package sweepd

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/guard"
	"gem5rtl/internal/sim"
)

// Chaos is the seeded fault-injecting executor wrapper behind the soak
// tests: it wraps the server's composed per-point executor (Config.Chaos)
// and, per execution attempt, draws from a splitmix64 stream whether to
// panic, hang, fail transiently, tear a committed result file, or bit-flip a
// persisted checkpoint — the same fault surface a real deployment shows, on
// demand and reproducible from one seed.
//
// The injection decision for attempt k of point fp is a pure function of
// (Seed, fp, k) — the same derivation chain as RetryPolicy.Delay — so a soak
// run injects an identical fault script at any worker count.
type Chaos struct {
	// Seed selects the fault script. Two Chaos instances with equal seeds
	// and probabilities inject identical faults per (point, attempt).
	Seed uint64
	// PanicProb is the per-attempt probability of panicking mid-execution
	// (exercises runPoint's recovery and the retry loop).
	PanicProb float64
	// HangProb is the per-attempt probability of hanging until the
	// per-point deadline (or HangMax, whichever first) instead of running.
	HangProb float64
	// ErrProb is the per-attempt probability of failing with an injected
	// transient error.
	ErrProb float64
	// TornWriteProb is the per-attempt probability of tearing (truncating or
	// garbling) one committed result file in StoreDir — silent on-disk
	// corruption the next boot's integrity scan must quarantine.
	TornWriteProb float64
	// CkptFlipProb is the per-attempt probability of flipping one bit in a
	// persisted checkpoint file in CkptDir — caught by the snapshot CRC
	// trailer, degrading that point to a counted cold run.
	CkptFlipProb float64
	// HangMax caps an injected hang on executors without a deadline
	// (0 = 50ms), so a chaos soak cannot wedge.
	HangMax time.Duration
	// StoreDir / CkptDir aim the torn-write and bit-flip faults. Empty
	// disables the respective fault regardless of probability.
	StoreDir, CkptDir string

	mu       sync.Mutex
	attempts map[string]int // executions seen per fingerprint
	injected atomic.Uint64
}

// Injected reports how many faults the wrapper has injected so far (soak
// tests assert the chaos actually bit).
func (c *Chaos) Injected() uint64 { return c.injected.Load() }

// chance consumes one draw from the stream and succeeds with probability p.
func chance(rng *guard.RNG, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Uint64n(1<<32) < uint64(p*float64(uint64(1)<<32))
}

// Wrap returns an executor that injects faults in front of next. The
// attempt counter is per fingerprint, so a retried point faces a fresh draw
// each attempt and a finite fault script cannot quarantine every point
// forever (unless the probabilities say so).
func (c *Chaos) Wrap(next func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error)) func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
	c.mu.Lock()
	if c.attempts == nil {
		c.attempts = map[string]int{}
	}
	c.mu.Unlock()
	return func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
		fp := spec.Fingerprint()
		c.mu.Lock()
		c.attempts[fp]++
		att := c.attempts[fp]
		c.mu.Unlock()
		rng := guard.NewRNG(guard.DeriveSeed(guard.DeriveSeedString(c.Seed, fp), att))

		// Storage faults fire alongside the execution: they corrupt state at
		// rest without failing this attempt, exactly like real bit rot.
		if c.StoreDir != "" && chance(rng, c.TornWriteProb) {
			c.tearStoreFile(rng)
		}
		if c.CkptDir != "" && chance(rng, c.CkptFlipProb) {
			c.flipCkptFile(rng)
		}
		switch {
		case chance(rng, c.PanicProb):
			c.injected.Add(1)
			panic(fmt.Sprintf("chaos: injected panic (%s attempt %d)", fp[:8], att))
		case chance(rng, c.HangProb):
			c.injected.Add(1)
			hangMax := c.HangMax
			if hangMax <= 0 {
				hangMax = 50 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(hangMax):
				return 0, fmt.Errorf("chaos: injected hang released (%s attempt %d)", fp[:8], att)
			}
		case chance(rng, c.ErrProb):
			c.injected.Add(1)
			return 0, fmt.Errorf("chaos: injected transient failure (%s attempt %d)", fp[:8], att)
		}
		return next(ctx, spec)
	}
}

// tearStoreFile truncates or garbles one committed result file, simulating a
// torn write that slipped past the process (firmware lies, media rot). The
// damage is exercised by the next boot's integrity scan.
func (c *Chaos) tearStoreFile(rng *guard.RNG) {
	name, ok := pickFile(rng, c.StoreDir, ".json")
	if !ok {
		return
	}
	path := filepath.Join(c.StoreDir, name)
	buf, err := os.ReadFile(path)
	if err != nil || len(buf) == 0 {
		return
	}
	if rng.Uint64n(2) == 0 {
		buf = buf[:int(rng.Uint64n(uint64(len(buf))))]
	} else {
		buf[rng.Intn(len(buf))] ^= 0xff
	}
	if os.WriteFile(path, buf, 0o644) == nil {
		c.injected.Add(1)
	}
}

// flipCkptFile flips one bit in one persisted checkpoint file; the snapshot
// CRC trailer must catch it and degrade the affected point to a cold run.
func (c *Chaos) flipCkptFile(rng *guard.RNG) {
	name, ok := pickFile(rng, c.CkptDir, "")
	if !ok {
		return
	}
	path := filepath.Join(c.CkptDir, name)
	buf, err := os.ReadFile(path)
	if err != nil || len(buf) == 0 {
		return
	}
	buf[rng.Intn(len(buf))] ^= 1 << rng.Uint64n(8)
	if os.WriteFile(path, buf, 0o644) == nil {
		c.injected.Add(1)
	}
}

// pickFile draws one regular file (with the given suffix, if any) from dir.
func pickFile(rng *guard.RNG, dir, suffix string) (string, bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", false
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		if suffix != "" && !strings.HasSuffix(e.Name(), suffix) {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return "", false
	}
	return names[rng.Intn(len(names))], true
}
