// Package sweepd is the sweep-as-a-service layer: a long-running experiment
// server that accepts RunSpec batches over HTTP/JSON, shards the points
// across a simulation worker pool, and memoises every result in a persistent
// store keyed by the spec's canonical fingerprint. Identical points — across
// jobs, clients and server restarts — simulate once and cache-hit forever.
//
// The service is a thin deterministic shell around the same primitives the
// in-process tools use: points execute through experiments.Run with the
// server's composed options (warm-start against a shared checkpoint
// directory, liveness watchdog), results are normalised exactly like
// experiments.Runner.Sweep (an ideal-memory baseline is scheduled
// automatically for every technology point), and the canonical result
// encoding is shared with the sweepctl client so a served sweep diffs
// byte-identical against an in-process one.
//
// Endpoints (see Server.Handler):
//
//	POST   /v1/jobs              submit a batch  {client, priority, specs}
//	GET    /v1/jobs/{id}         job status
//	GET    /v1/jobs/{id}/results canonical results (submit order), once done
//	GET    /v1/jobs/{id}/stream  live JSONL progress (host interval records)
//	DELETE /v1/jobs/{id}         cancel: queued points are skipped
//	GET    /v1/status            server-wide status
//	GET    /v1/metrics           Prometheus text-format fleet metrics
//	GET    /v1/healthz           liveness/readiness probe (503 while draining)
//	GET    /v1/quarantine        quarantined (poison) points + corrupt store files
//	DELETE /v1/quarantine/{fp}   un-quarantine a point so it may simulate again
//	POST   /v1/drain             stop accepting jobs, finish the queue
//
// The execution layer is fault tolerant: transient failures (hangs, blown
// per-point deadlines, worker panics) retry on a seeded
// exponential-backoff-plus-jitter schedule that is a pure function of
// (seed, fingerprint, attempt) — identical at any worker count; permanent
// failures and points that exhaust their attempt budget are quarantined in a
// persistent poison store and served as errors instead of re-simulating;
// submissions beyond the queue depth bound or a client's quota are shed with
// HTTP 429 and a Retry-After hint.
package sweepd

import (
	"fmt"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

// PointResult is the canonical per-point result record: what the results
// endpoint returns, what sweepctl prints, and what an in-process
// Runner.Sweep converts to for byte-identical comparison. It deliberately
// excludes host-side measurements (wall time, cache hits) so two runs of the
// same sweep — served or local, cold or fully cached — encode identically.
type PointResult struct {
	Spec  experiments.RunSpec `json:"spec"`
	Ticks sim.Tick            `json:"ticks"`
	// Perf is Ticks(ideal baseline) / Ticks, 1 for ideal points, 0 on error —
	// the same normalisation as experiments.Result.Perf.
	Perf float64 `json:"perf"`
	Err  string  `json:"err,omitempty"`
}

// FromRunnerResults converts an in-process sweep into the canonical result
// records. sweepctl's local mode uses it so `sweepctl local` and a served
// submission of the same batch produce byte-identical output.
func FromRunnerResults(results []experiments.Result) []PointResult {
	out := make([]PointResult, len(results))
	for i, r := range results {
		out[i] = PointResult{Spec: r.Spec, Ticks: r.Ticks, Perf: r.Perf}
		if r.Err != nil {
			out[i].Err = r.Err.Error()
			out[i].Ticks, out[i].Perf = 0, 0
		}
	}
	return out
}

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	// JobRunning covers the whole active phase: points queued or simulating.
	JobRunning JobState = "running"
	// JobDone means every point reached a terminal state; results are ready.
	JobDone JobState = "done"
	// JobCancelled means the client cancelled; queued points were skipped.
	JobCancelled JobState = "cancelled"
)

// JobStatus is the status endpoint's payload.
type JobStatus struct {
	ID       string   `json:"id"`
	Client   string   `json:"client,omitempty"`
	Priority int      `json:"priority"`
	State    JobState `json:"state"`
	// Total counts the job's simulation points including the hidden ideal
	// baselines scheduled for normalisation.
	Total int `json:"total"`
	Done  int `json:"done"`
	// CachedAtSubmit counts points served from the result store at submit
	// time without touching the queue. A fully warm resubmission has
	// CachedAtSubmit == Total and never simulates.
	CachedAtSubmit int `json:"cached_at_submit"`
	Failed         int `json:"failed"`
	Running        int `json:"running"`
	Pending        int `json:"pending"`
}

// ServerStatus is the server-wide status payload.
type ServerStatus struct {
	Jobs          int `json:"jobs"`
	ActiveJobs    int `json:"active_jobs"`
	PointsPending int `json:"points_pending"`
	PointsRunning int `json:"points_running"`
	// PointsRetrying counts points sitting out a retry backoff.
	PointsRetrying int `json:"points_retrying"`
	// Retries counts retry attempts scheduled since boot.
	Retries  uint64 `json:"retries"`
	StoreLen int    `json:"store_len"`
	// Quarantined counts poison points (see /v1/quarantine);
	// StoreQuarantined counts corrupt result files the boot integrity scan
	// moved to the store's quarantine/ subdirectory.
	Quarantined      int             `json:"quarantined"`
	StoreQuarantined int             `json:"store_quarantined"`
	Draining         bool            `json:"draining"`
	Workers          int             `json:"workers"`
	CkptCache        CkptCacheCounts `json:"ckpt_cache"`
}

// HealthStatus is the healthz payload: a load balancer's readiness signal
// (the endpoint answers 503 while draining or with workers missing) plus the
// numbers an operator wants first during an incident.
type HealthStatus struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining"`
	// WorkersLive counts worker goroutines currently alive, WorkersBusy the
	// subset executing a point right now.
	WorkersLive int `json:"workers_live"`
	WorkersBusy int `json:"workers_busy"`
	// QueueDepth counts waiting points: pending plus retry-wait.
	QueueDepth int `json:"queue_depth"`
	Retrying   int `json:"retrying"`
	// Quarantined counts poison points; StoreQuarantined corrupt store files.
	Quarantined      int `json:"quarantined"`
	StoreQuarantined int `json:"store_quarantined"`
}

// QuarantineList is the quarantine endpoint's payload.
type QuarantineList struct {
	// Points are the poison records, sorted by fingerprint.
	Points []PoisonRecord `json:"points"`
	// StoreFiles counts corrupt result files moved aside by the boot scan
	// (kept in the store's quarantine/ subdirectory for post-mortems).
	StoreFiles int `json:"store_files"`
}

// CkptCacheCounts mirrors the warm-start cache effectiveness counters into
// the status payload. Stale counts snapshots that failed to restore;
// Corrupt counts persisted snapshot files rejected by their integrity
// trailer. Both degrade the point to a cold run.
type CkptCacheCounts struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Stale   uint64 `json:"stale"`
	Corrupt uint64 `json:"corrupt"`
}

// SubmitRequest is the submit endpoint's request body, decoded strictly: an
// unknown field (a typo'd option) rejects the batch.
type SubmitRequest struct {
	// Client identifies the submitter for quota accounting ("" is a shared
	// anonymous bucket).
	Client string `json:"client,omitempty"`
	// Priority orders the queue: higher runs first; ties run in submit order.
	Priority int `json:"priority,omitempty"`
	// Specs is the batch, validated like every other entry point
	// (experiments.RunSpec.Validate).
	Specs []experiments.RunSpec `json:"specs"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	ID string `json:"id"`
	// Points is the job's total point count including hidden baselines.
	Points int `json:"points"`
	// Cached counts points satisfied from the result store at submit time.
	Cached int `json:"cached"`
}

// errorResponse is the JSON error body every endpoint uses.
type errorResponse struct {
	Error string `json:"error"`
}

func errorf(format string, args ...any) errorResponse {
	return errorResponse{Error: fmt.Sprintf(format, args...)}
}
