package sweepd

import (
	"context"
	"errors"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/guard"
)

// RetryPolicy tunes the transient-failure retry loop. The zero value selects
// the defaults.
//
// Failures of experiments.Run split into a two-class taxonomy (see
// classify): permanent failures (an invalid spec, a build that cannot
// succeed — experiments.PermanentError) are quarantined on the first
// attempt, while everything else — a watchdog hang, a blown per-point
// deadline, a recovered worker panic, a chaos-injected fault — is presumed
// transient and retried up to MaxAttempts total executions before the point
// is quarantined as poison.
type RetryPolicy struct {
	// MaxAttempts is the total execution budget per point, including the
	// first attempt (0 = DefaultMaxAttempts). 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it (0 = DefaultBaseDelay).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = DefaultMaxDelay).
	MaxDelay time.Duration
	// Seed feeds the deterministic jitter stream. Two servers with the same
	// seed compute identical per-point retry schedules at any worker count.
	Seed uint64
}

// Retry policy defaults: three total attempts, 100 ms first backoff doubling
// to a 5 s cap.
const (
	DefaultMaxAttempts = 3
	DefaultBaseDelay   = 100 * time.Millisecond
	DefaultMaxDelay    = 5 * time.Second
)

// withDefaults fills zero fields with the default policy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	return p
}

// Delay returns the backoff before re-queueing point fp after its attempt-th
// failed execution (1-based). The schedule is exponential with equal jitter:
// the envelope doubles per attempt up to MaxDelay, and the delay lands
// uniformly in [envelope/2, envelope]. The jitter stream is splitmix64
// seeded from (Seed, fp, attempt) via guard.DeriveSeed/DeriveSeedString, so
// the full schedule of every point is a pure function of the policy — the
// same at one worker or sixty-four, reproducible from the seed alone.
func (p RetryPolicy) Delay(fp string, attempt int) time.Duration {
	p = p.withDefaults()
	env := p.BaseDelay
	for i := 1; i < attempt && env < p.MaxDelay; i++ {
		env *= 2
	}
	if env > p.MaxDelay {
		env = p.MaxDelay
	}
	rng := guard.NewRNG(guard.DeriveSeed(guard.DeriveSeedString(p.Seed, fp), attempt))
	half := uint64(env / 2)
	return time.Duration(half + rng.Uint64n(half+1))
}

// failureClass is the service-side classification of one failed execution.
type failureClass int

const (
	// classTransient failures spend a retry attempt: hangs, deadlines,
	// panics, injected faults — anything a healthy re-execution might clear.
	classTransient failureClass = iota
	// classPermanent failures quarantine immediately: retrying an
	// experiments.PermanentError burns work without hope.
	classPermanent
	// classCancelled marks scheduling artefacts (server shutdown cancelling
	// the executor context); the point fails without retry or quarantine, so
	// a resubmission after restart simulates it fresh.
	classCancelled
)

// classify maps an executor error into the taxonomy. The per-point deadline
// surfaces as context.DeadlineExceeded and classifies transient — a point
// that timed out on a loaded worker may finish on a quiet one; if it never
// does, the attempt budget converts it into quarantine.
func classify(err error) failureClass {
	switch {
	case errors.Is(err, context.Canceled):
		return classCancelled
	case experiments.IsPermanent(err):
		return classPermanent
	default:
		return classTransient
	}
}
