package sweepd

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

// soakSpecs is the chaos batch: 12 technology points over 4 memories, which
// drag in 3 hidden ideal baselines (inflight varies, ideal dedups per shape).
func soakSpecs() []experiments.RunSpec {
	var specs []experiments.RunSpec
	for _, inflight := range []int{1, 16, 64} {
		for _, mem := range []string{"DDR4-1ch", "DDR4-4ch", "HBM", "GDDR5"} {
			specs = append(specs, testSpec(mem, inflight))
		}
	}
	return specs
}

// soakChaos is the fault mix the soak runs under: every fault class enabled,
// hot enough that most points fail at least once.
func soakChaos(seed uint64, storeDir string) *Chaos {
	return &Chaos{
		Seed: seed, PanicProb: 0.2, HangProb: 0.15, ErrProb: 0.25,
		TornWriteProb: 0.1, HangMax: 2 * time.Millisecond, StoreDir: storeDir,
	}
}

// runSoak drives one chaos soak: the batch submitted as three overlapping
// jobs from different clients, every job awaited. It returns the server, its
// chaos wrapper, and the sorted fingerprint partition (stored, poisoned).
func runSoak(t *testing.T, workers int, seed uint64, storeDir string) (*Server, *Chaos, []string, []string) {
	t.Helper()
	c := soakChaos(seed, storeDir)
	s, err := New(Config{
		Workers: workers, StoreDir: storeDir,
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: seed},
		Chaos: c,
		RunPoint: func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			return fakeTicks(spec), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	specs := soakSpecs()
	batches := [][]experiments.RunSpec{specs[:8], specs[4:], specs} // overlapping
	jobs := make([]*job, len(batches))
	for i, b := range batches {
		j, err := s.sched.submit(s.store, SubmitRequest{Client: fmt.Sprintf("client-%d", i), Specs: b}, 0)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for _, j := range jobs {
		waitDone(t, j)
	}

	// Invariant: every submitted point reached exactly one terminal state —
	// it is either stored (simulated successfully, exactly once) or poisoned
	// (quarantined), never both, never neither, never still live.
	var stored, poisoned []string
	for _, spec := range specs {
		for _, sp := range []experiments.RunSpec{spec, spec.Baseline()} {
			fp := sp.Fingerprint()
			_, inStore := s.store.Get(fp)
			_, inPoison := s.poison.Get(fp)
			if inStore == inPoison {
				t.Errorf("point %s: stored=%v poisoned=%v, want exactly one terminal state", fp[:8], inStore, inPoison)
			}
			if inStore {
				stored = append(stored, fp)
			} else {
				poisoned = append(poisoned, fp)
			}
		}
	}
	sort.Strings(stored)
	sort.Strings(poisoned)
	stored = dedupSorted(stored)
	poisoned = dedupSorted(poisoned)

	// Invariant: the attempt budget bounds executions of every point.
	c.mu.Lock()
	for fp, att := range c.attempts {
		if att > 3 {
			t.Errorf("point %s executed %d times, budget is 3", fp[:8], att)
		}
	}
	c.mu.Unlock()

	// Invariant: every job's results are complete, each point settled as a
	// value or an error.
	for _, j := range jobs {
		results, ok := s.sched.results(j)
		if !ok || len(results) != len(j.specs) {
			t.Fatalf("job %s: results ok=%v len=%d, want %d", j.id, ok, len(results), len(j.specs))
		}
		for i, r := range results {
			value := r.Err == "" && r.Ticks > 0
			failure := r.Err != "" && r.Ticks == 0
			if value == failure {
				t.Errorf("job %s result[%d] = %+v: neither a clean value nor a clean failure", j.id, i, r)
			}
		}
	}
	if c.Injected() == 0 {
		t.Error("chaos injected nothing; the soak proved nothing")
	}
	return s, c, stored, poisoned
}

func dedupSorted(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || in[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// TestChaosSoakInvariants is the seeded chaos soak: panics, hangs, transient
// failures and torn store writes injected against the full retry/quarantine
// machinery, with the no-point-lost/no-double-charge invariants checked after
// the dust settles — and the terminal partition reproduced exactly by a
// second server with eight times the workers, proving the fault script and
// retry schedule are worker-count independent.
func TestChaosSoakInvariants(t *testing.T) {
	const seed = 0xdecaf
	s1, c1, stored1, poisoned1 := runSoak(t, 1, seed, t.TempDir())
	defer s1.Close()

	// Double-charge check: resubmitting the whole batch touches no worker —
	// stored points serve from the store, poisoned points serve their
	// quarantine error.
	sumAttempts := func() int {
		c1.mu.Lock()
		defer c1.mu.Unlock()
		total := 0
		for _, att := range c1.attempts {
			total += att
		}
		return total
	}
	attemptsBefore := sumAttempts()
	j, err := s1.sched.submit(s1.store, SubmitRequest{Client: "replay", Specs: soakSpecs()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if after := sumAttempts(); after != attemptsBefore {
		t.Errorf("replay double-charged %d executions on already-settled points", after-attemptsBefore)
	}
	results, _ := s1.sched.results(j)
	for _, r := range results {
		if r.Err != "" && !strings.Contains(r.Err, "quarantined") {
			t.Errorf("replay error %q is not a served quarantine record", r.Err)
		}
	}

	s8, _, stored8, poisoned8 := runSoak(t, 8, seed, t.TempDir())
	defer s8.Close()
	if !equalStrings(stored1, stored8) || !equalStrings(poisoned1, poisoned8) {
		t.Errorf("terminal partition differs across worker counts:\n1 worker:  %d stored / %d poisoned\n8 workers: %d stored / %d poisoned",
			len(stored1), len(poisoned1), len(stored8), len(poisoned8))
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosSoakRestartHealsTornWrites closes the loop on storage chaos: the
// soak's torn writes silently corrupt committed result files, a restarted
// server's boot scan quarantines exactly the damage, and — after the poison
// records are cleared — a healthy resubmission re-simulates what was lost
// and ends with every point clean. No file the chaos tore is ever served.
func TestChaosSoakRestartHealsTornWrites(t *testing.T) {
	dir := t.TempDir()
	s1, _, stored, _ := runSoak(t, 4, 0xc0ffee, dir)
	s1.Close()

	s2, err := New(Config{Workers: 4, StoreDir: dir,
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
		RunPoint: func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			return fakeTicks(spec), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Start()

	// The boot scan accounts for every previously stored point: loaded
	// intact or quarantined as corrupt, nothing silently dropped.
	if got := s2.store.Len() + s2.store.Quarantined(); got < len(stored) {
		t.Errorf("restart accounts for %d of %d stored results (len=%d quarantined=%d)",
			got, len(stored), s2.store.Len(), s2.store.Quarantined())
	}
	// Every surviving entry passed the integrity gate: its spec hashes to
	// its fingerprint and its ticks match the deterministic executor.
	for _, fp := range stored {
		if e, ok := s2.store.Get(fp); ok {
			if e.Spec.Fingerprint() != fp || e.Ticks != fakeTicks(e.Spec) {
				t.Errorf("restart loaded a corrupt entry for %s: %+v", fp[:8], e)
			}
		}
	}

	// Heal: clear the poison, resubmit everything against a now-healthy
	// executor. Torn entries re-simulate, quarantined points get their fresh
	// attempt budget, and the batch converges to all-clean.
	for _, rec := range s2.poison.List() {
		s2.poison.Remove(rec.Fingerprint)
	}
	j, err := s2.sched.submit(s2.store, SubmitRequest{Client: "heal", Specs: soakSpecs()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	results, _ := s2.sched.results(j)
	for i, r := range results {
		if r.Err != "" || r.Perf != 0.5 {
			t.Errorf("healed result[%d] = %+v, want clean perf=0.5", i, r)
		}
	}
}

// TestChaosRealExecutorSmoke runs chaos over the real experiments.Run
// executor: injected panics and transient failures retry into real
// simulations, and every stored result matches a clean re-run of the same
// spec — the chaos layer can delay or quarantine a point but never corrupt
// a value that gets served.
func TestChaosRealExecutorSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations are not -short friendly")
	}
	specs := []experiments.RunSpec{
		testSpec("HBM", 16), testSpec("DDR4-1ch", 16),
		testSpec("HBM", 64), testSpec("DDR4-1ch", 64),
	}
	s, err := New(Config{
		Workers: 4, StoreDir: t.TempDir(),
		Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 11},
		Chaos: &Chaos{Seed: 11, PanicProb: 0.2, ErrProb: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()

	j, err := s.sched.submit(s.store, SubmitRequest{Specs: specs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	for _, spec := range specs {
		for _, sp := range []experiments.RunSpec{spec, spec.Baseline()} {
			fp := sp.Fingerprint()
			e, inStore := s.store.Get(fp)
			_, inPoison := s.poison.Get(fp)
			if inStore == inPoison {
				t.Errorf("real point %s: stored=%v poisoned=%v, want exactly one", fp[:8], inStore, inPoison)
			}
			if !inStore {
				continue
			}
			want, err := experiments.Run(context.Background(), sp)
			if err != nil {
				t.Fatalf("clean re-run of %v: %v", sp, err)
			}
			if e.Ticks != want {
				t.Errorf("stored ticks for %s = %d, clean run = %d: chaos corrupted a served value",
					fp[:8], e.Ticks, want)
			}
		}
	}
}
