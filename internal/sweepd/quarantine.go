package sweepd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gem5rtl/internal/experiments"
)

// PoisonDir is the sibling subdirectory of a result store where quarantined
// point records persist — next to the results, surviving restarts, keyed by
// the same fingerprints.
const PoisonDir = "poison"

// PoisonRecord is the structured failure record of a quarantined point: a
// point that exhausted its retry budget (or failed permanently) is persisted
// here and served as an error on every later submission instead of
// re-simulating forever. The record is self-describing — the spec, the
// attempt count, the class and every attempt's error — so an operator can
// judge whether to un-quarantine it.
type PoisonRecord struct {
	// Fingerprint is the point's result-store key (also the file name).
	Fingerprint string `json:"fingerprint"`
	// Spec is the quarantined simulation point.
	Spec experiments.RunSpec `json:"spec"`
	// Attempts is how many executions were spent before quarantining.
	Attempts int `json:"attempts"`
	// Class is the terminal classification: "permanent" (first failure was
	// unretryable) or "retries-exhausted" (transient failures ate the
	// attempt budget).
	Class string `json:"class"`
	// Errors lists every attempt's error, in attempt order.
	Errors []string `json:"errors"`
}

// Err renders the error a quarantined point serves to submitters.
func (r PoisonRecord) Err() error {
	last := "unknown failure"
	if n := len(r.Errors); n > 0 {
		last = r.Errors[n-1]
	}
	return fmt.Errorf("sweepd: quarantined (%s) after %d attempt(s); un-quarantine %s to retry; last error: %s",
		r.Class, r.Attempts, r.Fingerprint, last)
}

// PoisonStore persists quarantine records as <fingerprint>.json files under
// its directory, mirroring the result store's layout (a memory map in front
// of a directory, write-then-rename-then-fsync commits). dir may be "" for a
// memory-only store that dies with the process.
type PoisonStore struct {
	dir string
	mu  sync.Mutex
	mem map[string]PoisonRecord
}

// OpenPoisonStore opens (creating if needed) a poison store rooted at dir,
// loading every parseable record. A record that does not parse or whose
// fingerprint disagrees with its file name is skipped — an unreadable
// quarantine record must never block a point from running.
func OpenPoisonStore(dir string) (*PoisonStore, error) {
	ps := &PoisonStore{dir: dir, mem: map[string]PoisonRecord{}}
	if dir == "" {
		return ps, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweepd: poison store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sweepd: poison store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		fp := strings.TrimSuffix(name, ".json")
		buf, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var rec PoisonRecord
		if json.Unmarshal(buf, &rec) != nil || rec.Fingerprint != fp {
			continue
		}
		ps.mem[fp] = rec
	}
	return ps, nil
}

// Get returns the quarantine record for a fingerprint.
func (ps *PoisonStore) Get(fp string) (PoisonRecord, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	rec, ok := ps.mem[fp]
	return rec, ok
}

// Len reports how many points are quarantined.
func (ps *PoisonStore) Len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.mem)
}

// List returns every quarantine record, sorted by fingerprint so the
// quarantine endpoint's output is deterministic.
func (ps *PoisonStore) List() []PoisonRecord {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]PoisonRecord, 0, len(ps.mem))
	for _, rec := range ps.mem {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// Put records a quarantined point in memory and, for a directory-backed
// store, durably on disk (same temp-fsync-rename-fsync discipline as
// Store.Put), before the scheduler publishes the point as quarantined.
func (ps *PoisonStore) Put(fp string, rec PoisonRecord) error {
	rec.Fingerprint = fp
	ps.mu.Lock()
	ps.mem[fp] = rec
	ps.mu.Unlock()
	if ps.dir == "" {
		return nil
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(ps.dir, ".poison-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(ps.dir, fp+".json")); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(ps.dir)
}

// Remove un-quarantines a fingerprint: the record is deleted from memory and
// disk, so the next submission of the point simulates it fresh with a reset
// attempt budget. It reports whether the fingerprint was quarantined.
func (ps *PoisonStore) Remove(fp string) bool {
	ps.mu.Lock()
	_, ok := ps.mem[fp]
	delete(ps.mem, fp)
	ps.mu.Unlock()
	if ok && ps.dir != "" {
		os.Remove(filepath.Join(ps.dir, fp+".json"))
	}
	return ok
}
