package sweepd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

// storeEntry is one persisted result: the spec (so the file is
// self-describing and auditable) and its simulated completion time. Only
// successful runs are stored — a failed point re-simulates on the next
// submission instead of caching its error forever.
type storeEntry struct {
	Spec  experiments.RunSpec `json:"spec"`
	Ticks sim.Tick            `json:"ticks"`
}

// StoreQuarantineDir is the subdirectory of a result store where the boot
// integrity scan moves files it cannot trust, preserving them for a
// post-mortem instead of silently ignoring (or deleting) evidence of
// corruption.
const StoreQuarantineDir = "quarantine"

// Store is the persistent result store: a memory map in front of a directory
// of <fingerprint>.json files. The fingerprint is the hex SHA-256 of the
// spec's canonical JSON (experiments.RunSpec.Fingerprint), so two servers
// pointed at the same directory agree on keys byte-for-byte, and a restarted
// server recovers every previously simulated point at boot.
type Store struct {
	dir string
	// quarantined counts the corrupt/mismatched files the boot integrity
	// scan moved aside; surfaced through /v1/status so operators learn about
	// corruption instead of it being silently dropped.
	quarantined int
	mu          sync.Mutex
	mem         map[string]storeEntry
}

// OpenStore opens (and on first use creates) a store rooted at dir, loading
// every valid persisted result. dir may be "" for a purely in-memory store
// that does not survive restarts.
//
// The boot integrity scan trusts nothing: a file whose content does not
// parse, whose stored spec does not validate, or whose spec does not hash to
// the file's fingerprint name — a torn write from a power loss, on-disk bit
// rot, a hand-edited entry — is moved to the quarantine/ subdirectory and
// counted (see Quarantined), never loaded. Leftover temp files from a Put
// interrupted before its rename were never committed and are removed.
func OpenStore(dir string) (*Store, error) {
	st := &Store{dir: dir, mem: map[string]storeEntry{}}
	if dir == "" {
		return st, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweepd: result store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sweepd: result store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".result-") {
			// An uncommitted temp file: the rename is the commit point, so a
			// crash before it leaves data that was never promised to anyone.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		fp := strings.TrimSuffix(name, ".json")
		ent, ok := readEntry(filepath.Join(dir, name), fp)
		if !ok {
			st.quarantineFile(name)
			continue
		}
		st.mem[fp] = ent
	}
	return st, nil
}

// readEntry loads and integrity-checks one persisted result file.
func readEntry(path, fp string) (storeEntry, bool) {
	var ent storeEntry
	buf, err := os.ReadFile(path)
	if err != nil {
		return ent, false
	}
	if err := json.Unmarshal(buf, &ent); err != nil {
		return ent, false
	}
	// Integrity gate: the stored spec must hash to the file's name.
	if ent.Spec.Fingerprint() != fp || ent.Spec.Validate() != nil {
		return ent, false
	}
	return ent, true
}

// quarantineFile moves a corrupt file into the quarantine/ subdirectory and
// counts it. If the move itself fails the file is left in place — still
// counted, still never loaded.
func (st *Store) quarantineFile(name string) {
	st.quarantined++
	qdir := filepath.Join(st.dir, StoreQuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	_ = os.Rename(filepath.Join(st.dir, name), filepath.Join(qdir, name))
}

// Quarantined reports how many corrupt files the boot integrity scan moved
// to the quarantine/ subdirectory.
func (st *Store) Quarantined() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.quarantined
}

// Get returns the stored result for a fingerprint.
func (st *Store) Get(fp string) (storeEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.mem[fp]
	return e, ok
}

// Len reports how many results the store holds.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.mem)
}

// Put records a result in memory and, for a directory-backed store, durably
// on disk.
//
// Crash-consistency guarantee: the entry is written to a temp file, the temp
// file is fsynced, atomically renamed onto its final fingerprint name, and
// the directory is fsynced. The rename is the commit point — a crash at any
// earlier moment leaves only an uncommitted temp file (removed at the next
// boot), never a half-written <fingerprint>.json. The two fsyncs extend the
// guarantee from process crash to power loss: the data blocks are on disk
// before the name appears, and the directory entry is on disk before Put
// returns. A result the scheduler has published as done therefore survives
// anything short of media failure, and anything that slips through anyway
// (bit rot) is caught by the boot integrity scan.
func (st *Store) Put(spec experiments.RunSpec, ticks sim.Tick) error {
	fp := spec.Fingerprint()
	ent := storeEntry{Spec: spec, Ticks: ticks}
	st.mu.Lock()
	st.mem[fp] = ent
	st.mu.Unlock()
	if st.dir == "" {
		return nil
	}
	buf, err := json.Marshal(ent)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.dir, ".result-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(st.dir, fp+".json")); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(st.dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
