package sweepd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

// storeEntry is one persisted result: the spec (so the file is
// self-describing and auditable) and its simulated completion time. Only
// successful runs are stored — a failed point re-simulates on the next
// submission instead of caching its error forever.
type storeEntry struct {
	Spec  experiments.RunSpec `json:"spec"`
	Ticks sim.Tick            `json:"ticks"`
}

// Store is the persistent result store: a memory map in front of a directory
// of <fingerprint>.json files. The fingerprint is the hex SHA-256 of the
// spec's canonical JSON (experiments.RunSpec.Fingerprint), so two servers
// pointed at the same directory agree on keys byte-for-byte, and a restarted
// server recovers every previously simulated point at boot.
type Store struct {
	dir string
	mu  sync.Mutex
	mem map[string]storeEntry
}

// OpenStore opens (and on first use creates) a store rooted at dir, loading
// every valid persisted result. dir may be "" for a purely in-memory store
// that does not survive restarts. A file whose content does not match its
// fingerprint name — a truncated write from a crashed server, a hand-edited
// entry — is skipped, not trusted.
func OpenStore(dir string) (*Store, error) {
	st := &Store{dir: dir, mem: map[string]storeEntry{}}
	if dir == "" {
		return st, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweepd: result store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sweepd: result store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		fp := strings.TrimSuffix(name, ".json")
		buf, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var ent storeEntry
		if err := json.Unmarshal(buf, &ent); err != nil {
			continue
		}
		// Integrity gate: the stored spec must hash to the file's name.
		if ent.Spec.Fingerprint() != fp || ent.Spec.Validate() != nil {
			continue
		}
		st.mem[fp] = ent
	}
	return st, nil
}

// Get returns the stored result for a fingerprint.
func (st *Store) Get(fp string) (storeEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.mem[fp]
	return e, ok
}

// Len reports how many results the store holds.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.mem)
}

// Put records a result in memory and, for a directory-backed store, on disk
// with a write-then-rename so a crash mid-write never leaves a torn file for
// the next boot's integrity gate to reject.
func (st *Store) Put(spec experiments.RunSpec, ticks sim.Tick) error {
	fp := spec.Fingerprint()
	ent := storeEntry{Spec: spec, Ticks: ticks}
	st.mu.Lock()
	st.mem[fp] = ent
	st.mu.Unlock()
	if st.dir == "" {
		return nil
	}
	buf, err := json.Marshal(ent)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(st.dir, ".result-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(st.dir, fp+".json")); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
