package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

// fastRetry keeps retry-path tests quick without disabling the backoff.
func fastRetry(seed uint64) RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: seed}
}

// flakyRun fails the first failures attempts of every fingerprint with a
// transient error, then succeeds, counting executions per fingerprint.
func flakyRun(failures int, counts *sync.Map) func(context.Context, experiments.RunSpec) (sim.Tick, error) {
	return func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
		fp := spec.Fingerprint()
		v, _ := counts.LoadOrStore(fp, new(atomic.Int64))
		n := v.(*atomic.Int64).Add(1)
		if int(n) <= failures {
			return 0, fmt.Errorf("transient failure %d for %s", n, fp[:8])
		}
		return fakeTicks(spec), nil
	}
}

// TestRetryDelayDeterministicAndBounded pins the backoff schedule's contract:
// a pure function of (seed, fingerprint, attempt) inside the equal-jitter
// envelope, doubling per attempt up to the cap, independent of call order or
// concurrency.
func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 1 * time.Second, Seed: 99}
	fp := testSpec("HBM", 16).Fingerprint()
	for attempt := 1; attempt <= 6; attempt++ {
		d := p.Delay(fp, attempt)
		env := p.BaseDelay << (attempt - 1)
		if env > p.MaxDelay {
			env = p.MaxDelay
		}
		if d < env/2 || d > env {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, env/2, env)
		}
		if again := p.Delay(fp, attempt); again != d {
			t.Errorf("attempt %d: Delay is not a pure function: %v then %v", attempt, d, again)
		}
	}
	// Different points draw from independent jitter streams.
	other := testSpec("GDDR5", 64).Fingerprint()
	same := 0
	for attempt := 1; attempt <= 6; attempt++ {
		if p.Delay(fp, attempt) == p.Delay(other, attempt) {
			same++
		}
	}
	if same == 6 {
		t.Error("two distinct fingerprints share the entire jitter schedule")
	}
}

// TestRetryScheduleIndependentOfWorkerCount is the determinism acceptance
// test: the same seed produces the same per-point retry schedule and the same
// results whether the pool runs one worker or eight.
func TestRetryScheduleIndependentOfWorkerCount(t *testing.T) {
	specs := []experiments.RunSpec{testSpec("HBM", 16), testSpec("DDR4-1ch", 16), testSpec("GDDR5", 64)}
	const seed = 1234

	type outcome struct {
		results  []byte
		attempts map[string]int64
		retries  uint64
	}
	runAt := func(workers int) outcome {
		var counts sync.Map
		s, err := New(Config{Workers: workers, Retry: fastRetry(seed), RunPoint: flakyRun(2, &counts)})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.Start()
		j, err := s.sched.submit(s.store, SubmitRequest{Specs: specs}, 0)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		res, _ := s.sched.results(j)
		o := outcome{results: EncodeResults(res), attempts: map[string]int64{}, retries: s.sched.counts().retries}
		counts.Range(func(k, v any) bool {
			o.attempts[k.(string)] = v.(*atomic.Int64).Load()
			return true
		})
		return o
	}

	one, eight := runAt(1), runAt(8)
	if !bytes.Equal(one.results, eight.results) {
		t.Errorf("results differ across worker counts:\n1: %s\n8: %s", one.results, eight.results)
	}
	for fp, n := range one.attempts {
		if eight.attempts[fp] != n {
			t.Errorf("point %s: %d attempts at 1 worker, %d at 8", fp[:8], n, eight.attempts[fp])
		}
		if n != 3 {
			t.Errorf("point %s took %d attempts, want 3 (2 failures + success)", fp[:8], n)
		}
	}
	if one.retries != eight.retries {
		t.Errorf("scheduled %d retries at 1 worker, %d at 8", one.retries, eight.retries)
	}
	// The schedule itself is reproducible offline from the seed alone.
	p := fastRetry(seed)
	for fp := range one.attempts {
		for att := 1; att <= 2; att++ {
			if p.Delay(fp, att) != fastRetry(seed).Delay(fp, att) {
				t.Fatalf("offline schedule recomputation diverged for %s attempt %d", fp[:8], att)
			}
		}
	}
}

// TestPermanentFailureQuarantinesImmediately: an error wrapped with
// experiments.Permanent burns exactly one attempt, lands in the poison store
// with class "permanent", and later submissions are served the quarantine
// error without executing anything.
func TestPermanentFailureQuarantinesImmediately(t *testing.T) {
	var runs atomic.Int64
	bad := testSpec("HBM", 16)
	s, err := New(Config{Workers: 2, Retry: fastRetry(1),
		RunPoint: func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			runs.Add(1)
			if !spec.IsIdeal() {
				return 0, experiments.Permanent(fmt.Errorf("this netlist will never build"))
			}
			return fakeTicks(spec), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()

	j, err := s.sched.submit(s.store, SubmitRequest{Specs: []experiments.RunSpec{bad}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if got := runs.Load(); got != 2 {
		t.Errorf("executed %d attempts, want 2 (1 permanent point + 1 baseline), no retries", got)
	}
	rec, ok := s.poison.Get(bad.Fingerprint())
	if !ok || rec.Class != "permanent" || rec.Attempts != 1 {
		t.Fatalf("poison record = %+v ok=%v, want class=permanent attempts=1", rec, ok)
	}
	results, _ := s.sched.results(j)
	if results[0].Err == "" || !strings.Contains(results[0].Err, "never build") {
		t.Errorf("result error %q does not carry the root cause", results[0].Err)
	}

	// Resubmission: served from quarantine, zero executions.
	before := runs.Load()
	j2, err := s.sched.submit(s.store, SubmitRequest{Specs: []experiments.RunSpec{bad}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if runs.Load() != before {
		t.Errorf("quarantined point re-executed %d times", runs.Load()-before)
	}
	r2, _ := s.sched.results(j2)
	if !strings.Contains(r2[0].Err, "quarantined") {
		t.Errorf("resubmission error %q does not mention quarantine", r2[0].Err)
	}
}

// TestQuarantineSurvivesRestartAndUnquarantine walks the full poison
// lifecycle over HTTP: exhaust the retry budget, restart the server against
// the same store, observe the record survived, un-quarantine through the API,
// and watch the point simulate successfully on the next submission.
func TestQuarantineSurvivesRestartAndUnquarantine(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec("DDR4-4ch", 16)
	var healed atomic.Bool
	run := func(ctx context.Context, sp experiments.RunSpec) (sim.Tick, error) {
		if !sp.IsIdeal() && !healed.Load() {
			return 0, fmt.Errorf("transient wobble")
		}
		return fakeTicks(sp), nil
	}

	s1, err := New(Config{Workers: 1, StoreDir: dir, Retry: fastRetry(7), RunPoint: run})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	j, err := s1.sched.submit(s1.store, SubmitRequest{Specs: []experiments.RunSpec{spec}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if rec, ok := s1.poison.Get(spec.Fingerprint()); !ok || rec.Class != "retries-exhausted" || rec.Attempts != 3 || len(rec.Errors) != 3 {
		t.Fatalf("poison record = %+v ok=%v, want retries-exhausted after 3 attempts with 3 errors", rec, ok)
	}
	s1.Close()

	s2, err := New(Config{Workers: 1, StoreDir: dir, Retry: fastRetry(7), RunPoint: run})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Start()
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()

	// The record survived the restart and is listed.
	resp, err := http.Get(ts.URL + "/v1/quarantine")
	if err != nil {
		t.Fatal(err)
	}
	var list QuarantineList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Points) != 1 || list.Points[0].Fingerprint != spec.Fingerprint() {
		t.Fatalf("quarantine list after restart = %+v, want the poisoned point", list)
	}

	// Un-quarantine over HTTP; the infrastructure issue is "fixed".
	healed.Store(true)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/quarantine/"+spec.Fingerprint(), nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("unquarantine: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unquarantine: %v status %d, want 404", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	body, _ := json.Marshal(SubmitRequest{Specs: []experiments.RunSpec{spec}})
	id := submitAndWait(t, ts, string(body))
	var results []PointResult
	if err := json.Unmarshal(getResults(t, ts, id), &results); err != nil {
		t.Fatal(err)
	}
	if results[0].Err != "" || results[0].Perf != 0.5 {
		t.Errorf("un-quarantined point result = %+v, want a clean perf=0.5", results[0])
	}
}

// TestPointDeadlineEvictsHungPoint: a worker stuck on a point that ignores
// simulated time is evicted by the per-point context deadline, retried, and
// finally quarantined — the job ends instead of wedging forever.
func TestPointDeadlineEvictsHungPoint(t *testing.T) {
	s, err := New(Config{Workers: 1, Retry: fastRetry(3), PointDeadline: 20 * time.Millisecond,
		RunPoint: func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			if spec.IsIdeal() {
				return fakeTicks(spec), nil
			}
			<-ctx.Done() // a host-level hang: only the deadline can free the worker
			return 0, ctx.Err()
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()

	spec := testSpec("HBM", 240)
	j, err := s.sched.submit(s.store, SubmitRequest{Specs: []experiments.RunSpec{spec}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	rec, ok := s.poison.Get(spec.Fingerprint())
	if !ok || rec.Attempts != 3 {
		t.Fatalf("hung point poison record = %+v ok=%v, want quarantine after 3 deadline evictions", rec, ok)
	}
	for _, e := range rec.Errors {
		if !strings.Contains(e, "deadline") {
			t.Errorf("attempt error %q does not carry the deadline cause", e)
		}
	}
}

// TestQueueFullShedsLoad: with a bounded queue, a submission that would push
// past the depth bound is rejected with 429 and a Retry-After hint, while
// joining already-queued points stays free.
func TestQueueFullShedsLoad(t *testing.T) {
	// Workers not started: every accepted point stays queued.
	s, err := New(Config{Workers: 1, MaxQueue: 3, RunPoint: countingRun(new(atomic.Int64))})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(spec experiments.RunSpec) *http.Response {
		body, _ := json.Marshal(SubmitRequest{Specs: []experiments.RunSpec{spec}})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// 1 tech + 1 baseline = 2 queued of 3.
	if resp := post(testSpec("HBM", 16)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	// 2 more fresh points would make 4 > 3: shed with 429 + Retry-After.
	resp := post(testSpec("GDDR5", 64))
	var e errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: status %d, want 429 (%s)", resp.StatusCode, e.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response lacks a Retry-After hint")
	}
	if !strings.Contains(e.Error, "queue full") {
		t.Errorf("shed error %q does not say the queue is full", e.Error)
	}
	// Joining the already-queued points is free even at the bound.
	if resp := post(testSpec("HBM", 16)); resp.StatusCode != http.StatusAccepted {
		t.Errorf("join submit: status %d, want 202 (joining is free)", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestQuotaRejectsWith429AndRetryAfter pins the quota path's HTTP mapping.
func TestQuotaRejectsWith429AndRetryAfter(t *testing.T) {
	s, err := New(Config{Workers: 1, Quota: 2, RunPoint: countingRun(new(atomic.Int64))})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(SubmitRequest{Client: "alice", Specs: []experiments.RunSpec{testSpec("HBM", 16)}})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("within-quota submit: status %d", resp.StatusCode)
	}
	body, _ = json.Marshal(SubmitRequest{Client: "alice", Specs: []experiments.RunSpec{testSpec("GDDR5", 64)}})
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	_ = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Errorf("over-quota submit: status %d retry-after %q, want 429 with hint (%s)",
			resp.StatusCode, resp.Header.Get("Retry-After"), e.Error)
	}
}

// TestHealthzReflectsServerState: healthz answers 200 with live workers and
// queue depth while serving, and flips to 503 once draining.
func TestHealthzReflectsServerState(t *testing.T) {
	s, err := New(Config{Workers: 2, RunPoint: countingRun(new(atomic.Int64))})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() (int, HealthStatus) {
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	// Workers not launched yet: not ready.
	if code, h := get(); code != http.StatusServiceUnavailable || h.OK {
		t.Errorf("pre-start healthz: %d %+v, want 503 not-ok", code, h)
	}
	s.Start()
	if code, h := get(); code != http.StatusOK || !h.OK || h.WorkersLive != 2 {
		t.Errorf("healthz: %d %+v, want 200 ok with 2 live workers", code, h)
	}
	if resp, err := http.Post(ts.URL+"/v1/drain", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if code, h := get(); code != http.StatusServiceUnavailable || h.OK || !h.Draining {
		t.Errorf("draining healthz: %d %+v, want 503 draining", code, h)
	}
}

// TestDrainFlushesRetryBackoffs: a drain must not wait out pending backoff
// timers — retry-waiting points flush straight back onto the heap and settle.
func TestDrainFlushesRetryBackoffs(t *testing.T) {
	var counts sync.Map
	s, err := New(Config{Workers: 1,
		Retry:    RetryPolicy{MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour, Seed: 5},
		RunPoint: flakyRun(1, &counts)})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	j, err := s.sched.submit(s.store, SubmitRequest{Specs: []experiments.RunSpec{testSpec("HBM", 16)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the failed first attempts park both points in retry-wait.
	deadline := time.Now().Add(5 * time.Second)
	for s.sched.counts().delayed < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("points never reached retry-wait: %+v", s.sched.counts())
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain blocked on hour-long backoffs: %v", err)
	}
	waitDone(t, j)
	results, _ := s.sched.results(j)
	if results[0].Err != "" || results[0].Perf != 0.5 {
		t.Errorf("drained retry result = %+v, want the retried success", results[0])
	}
}
