package sweepd

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

var (
	promHelpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+]?([0-9.eE+-]+|NaN|Inf)$`)
)

// validateProm checks every line of a Prometheus text-exposition body and
// returns the set of sample metric names seen.
func validateProm(t *testing.T, body string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	line := 0
	for sc.Scan() {
		line++
		s := sc.Text()
		switch {
		case s == "":
		case strings.HasPrefix(s, "# HELP"):
			if !promHelpRe.MatchString(s) {
				t.Errorf("line %d: malformed HELP: %q", line, s)
			}
		case strings.HasPrefix(s, "# TYPE"):
			if !promTypeRe.MatchString(s) {
				t.Errorf("line %d: malformed TYPE: %q", line, s)
			}
		case strings.HasPrefix(s, "#"):
		default:
			if !promSampleRe.MatchString(s) {
				t.Errorf("line %d: malformed sample: %q", line, s)
				continue
			}
			name := s
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			names[name] = true
		}
	}
	if line == 0 {
		t.Fatal("metrics body is empty")
	}
	return names
}

// TestMetricsEndpoint submits one profiled point to a served sweep and
// scrapes /v1/metrics: the body must be well-formed Prometheus text format
// and carry both the registry gauges (queue depths, retry/quarantine/cache
// counters, worker utilization) and the aggregated selfprof counter
// families with component/kind labels.
func TestMetricsEndpoint(t *testing.T) {
	s, err := New(Config{
		Workers:     2,
		StoreDir:    t.TempDir(),
		SelfProfile: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := experiments.DSEParams{Scale: 64, Limit: 8 * sim.Second}.
		Spec("sanity3", 1, "DDR4-1ch", 64)
	body, err := json.Marshal(SubmitRequest{Client: "metrics-test",
		Specs: []experiments.RunSpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	submitAndWait(t, ts, string(body))

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition format", ct)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	names := validateProm(t, text)

	for _, want := range []string{
		MetricsPrefix + "sweepd_points_pending",
		MetricsPrefix + "sweepd_points_running",
		MetricsPrefix + "sweepd_points_retrying",
		MetricsPrefix + "sweepd_retries",
		MetricsPrefix + "sweepd_quarantined",
		MetricsPrefix + "sweepd_workers_live",
		MetricsPrefix + "sweepd_workers_busy",
		MetricsPrefix + "sweepd_workers_utilization",
		MetricsPrefix + "selfprof_events_total",
		MetricsPrefix + "selfprof_seconds_total",
	} {
		if !names[want] {
			t.Errorf("metrics missing family %s (have %v)", want, names)
		}
	}
	// The profiled point must have produced labelled attribution samples.
	if !strings.Contains(text, MetricsPrefix+`selfprof_events_total{component="`) {
		t.Error("selfprof_events_total has no labelled samples")
	}

	// The aggregated report snapshot is also available programmatically and
	// must be non-empty after a profiled point.
	rep := s.Attr()
	if rep == nil || rep.TotalEvents() == 0 {
		t.Fatalf("server attribution snapshot empty: %+v", rep)
	}
}

// TestMetricsEndpointUnprofiled checks the off path: without SelfProfile the
// endpoint still serves well-formed gauges and simply omits the selfprof
// families.
func TestMetricsEndpointUnprofiled(t *testing.T) {
	s, err := New(Config{Workers: 1, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	names := validateProm(t, sb.String())
	if !names[MetricsPrefix+"sweepd_points_pending"] {
		t.Error("registry gauges missing from unprofiled metrics")
	}
	if names[MetricsPrefix+"selfprof_events_total"] {
		t.Error("selfprof families present without SelfProfile")
	}
}
