package sweepd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

// gridSpecs is the 12-config sanity3 NVDLA grid of BenchmarkSweep and the
// kernel golden tests — the ISSUE's acceptance batch.
func gridSpecs() []experiments.RunSpec {
	p := experiments.DSEParams{Scale: 32, Limit: 8 * sim.Second}
	var specs []experiments.RunSpec
	for _, inflight := range []int{1, 16, 64, 240} {
		for _, mem := range []string{"DDR4-1ch", "DDR4-4ch", "HBM"} {
			specs = append(specs, p.Spec("sanity3", 1, mem, inflight))
		}
	}
	return specs
}

// submitAndWait posts a batch and polls status until the job finishes,
// returning the job ID.
func submitAndWait(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, e.Error)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := getStatus(t, ts, sub.ID)
		if st.State == JobDone || st.State == JobCancelled {
			return sub.ID
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", sub.ID, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getResults(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestE2EGridMatchesInProcessRunner is the acceptance test: the 12-config
// NVDLA grid submitted twice to a served sweep yields byte-identical result
// documents, the second submission is served entirely from the fingerprint
// store with zero re-simulated points, and both match an in-process
// Runner.Sweep over the same batch byte for byte.
func TestE2EGridMatchesInProcessRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("full 12-config grid is not -short friendly")
	}
	var runs atomic.Int64
	s, err := New(Config{
		Workers:  4,
		StoreDir: t.TempDir(),
		RunPoint: func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			runs.Add(1)
			return experiments.Run(ctx, spec)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specs := gridSpecs()
	body, err := json.Marshal(SubmitRequest{Client: "e2e", Specs: specs})
	if err != nil {
		t.Fatal(err)
	}

	id1 := submitAndWait(t, ts, string(body))
	first := runs.Load()
	// 12 technology points + 4 distinct ideal baselines.
	if first != 16 {
		t.Errorf("first submission simulated %d points, want 16", first)
	}
	res1 := getResults(t, ts, id1)

	id2 := submitAndWait(t, ts, string(body))
	if got := runs.Load(); got != first {
		t.Errorf("second submission re-simulated %d points, want 0", got-first)
	}
	st2 := getStatus(t, ts, id2)
	if st2.CachedAtSubmit != st2.Total {
		t.Errorf("second submission cached %d of %d points at submit, want all", st2.CachedAtSubmit, st2.Total)
	}
	res2 := getResults(t, ts, id2)
	if !bytes.Equal(res1, res2) {
		t.Error("served results are not byte-identical across submissions")
	}

	// The served sweep must diff clean against the in-process runner.
	local, err := experiments.Runner{Workers: 4}.Sweep(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	want := EncodeResults(FromRunnerResults(local))
	if !bytes.Equal(res1, want) {
		t.Errorf("served results diverge from in-process Runner.Sweep:\nserved:\n%s\nlocal:\n%s", res1, want)
	}
}

// TestE2EStreamDeliversProgress checks the JSONL progress stream: records
// carry the host stats registry's telescoping deltas plus the job status in
// Extra, and the stream ends once the job finishes.
func TestE2EStreamDeliversProgress(t *testing.T) {
	release := make(chan struct{})
	s, err := New(Config{Workers: 1, StreamPeriod: 10 * time.Millisecond,
		RunPoint: func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			<-release
			return fakeTicks(spec), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(SubmitRequest{Specs: []experiments.RunSpec{testSpec("HBM", 16)}})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stream, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()

	type record struct {
		Tick     uint64             `json:"tick"`
		Interval int                `json:"interval"`
		Stats    map[string]float64 `json:"stats"`
		Extra    JobStatus          `json:"extra"`
	}
	var last record
	lines := 0
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stream delivered no records")
	}
	if last.Extra.ID != sub.ID || last.Extra.State != JobDone {
		t.Errorf("final record extra = %+v, want job %s done", last.Extra, sub.ID)
	}
	if _, ok := last.Stats["host.events"]; !ok {
		t.Errorf("stream records lack the host stats registry: %v", last.Stats)
	}
}

// TestE2EValidationAndErrors checks the HTTP error surface: bad specs and
// unknown fields reject with 400, unknown jobs 404, premature results 409,
// cancel via DELETE, and drain flips submissions to 503.
func TestE2EValidationAndErrors(t *testing.T) {
	release := make(chan struct{})
	var once func()
	{
		var done atomic.Bool
		once = func() {
			if done.CompareAndSwap(false, true) {
				close(release)
			}
		}
	}
	s, err := New(Config{Workers: 1,
		RunPoint: func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			<-release
			return fakeTicks(spec), nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { once(); s.Close() }()
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, string) {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp, e.Error
	}

	if resp, msg := post(`{"specs":[{"workload":"resnet","nvdlas":1,"memory":"HBM","inflight":4,"scale":32,"limit":1}]}`); resp.StatusCode != http.StatusBadRequest || !strings.Contains(msg, `workload "resnet"`) {
		t.Errorf("invalid workload: status %d, %q", resp.StatusCode, msg)
	}
	if resp, msg := post(`{"specs":[{"workload":"sanity3","inflght":4}]}`); resp.StatusCode != http.StatusBadRequest || !strings.Contains(msg, "inflght") {
		t.Errorf("unknown spec field: status %d, %q", resp.StatusCode, msg)
	}
	if resp, _ := post(`{"specs":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", resp.StatusCode)
	}
	if resp, _ := post(`{"priorty":3,"specs":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown request field: status %d", resp.StatusCode)
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/job-999999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// A live job: results must 409, DELETE must cancel.
	body, _ := json.Marshal(SubmitRequest{Specs: []experiments.RunSpec{testSpec("HBM", 16)}})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	_ = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/results"); err != nil || resp.StatusCode != http.StatusConflict {
		t.Errorf("premature results: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("cancel: %v %d", err, resp.StatusCode)
	} else {
		var st JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State != JobCancelled {
			t.Errorf("cancelled job state %q", st.State)
		}
	}
	once()

	// Drain: new submissions bounce with 503, status reports draining.
	if resp, err := http.Post(ts.URL+"/v1/drain", "application/json", nil); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, _ := post(fmt.Sprintf(`{"specs":[%s]}`, testSpec("HBM", 64).CanonicalJSON())); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: status %d", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/status"); err != nil {
		t.Fatal(err)
	} else {
		var st ServerStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if !st.Draining {
			t.Errorf("server status %+v does not report draining", st)
		}
	}
}
