package sweepd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"gem5rtl/internal/sim"
)

// TestStoreCrashRestartNoLoss is the kill-and-restart durability test:
// results committed by concurrent Puts — interleaved with the debris a
// crashed server leaves behind (uncommitted temp files, a torn entry, a
// mismatched entry) — are all present after reopening, byte for byte. The
// debris is quarantined or removed, never loaded, and never costs a
// committed result.
func TestStoreCrashRestartNoLoss(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	const n = 24
	specs := make(map[string]sim.Tick, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		spec := testSpec([]string{"HBM", "DDR4-1ch", "DDR4-4ch", "GDDR5"}[i%4], 1+i)
		ticks := sim.Tick(1000 + 17*i)
		mu.Lock()
		specs[spec.Fingerprint()] = ticks
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := st.Put(spec, ticks); err != nil {
				t.Errorf("put: %v", err)
			}
		}()
	}
	wg.Wait()

	// Simulated crash debris: Put's commit point is the rename, so temp
	// files are uncommitted garbage; torn and mismatched .json files are
	// corruption the next boot must quarantine.
	if err := os.WriteFile(filepath.Join(dir, ".result-crashed"), []byte(`{"spec":{"work`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("a", 64)+".json"), []byte(`{"spec":{"workload":"sa`), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != n {
		t.Fatalf("restarted store has %d results, want %d — results were lost", re.Len(), n)
	}
	for fp, ticks := range specs {
		e, ok := re.Get(fp)
		if !ok || e.Ticks != ticks {
			t.Errorf("result %s: got (%d, %v), want (%d, true)", fp[:8], e.Ticks, ok, ticks)
		}
	}
	if re.Quarantined() != 1 {
		t.Errorf("quarantined %d files, want 1 (the torn json)", re.Quarantined())
	}
	if _, err := os.Stat(filepath.Join(dir, ".result-crashed")); !os.IsNotExist(err) {
		t.Error("uncommitted temp file survived the boot scan")
	}
}

// FuzzStore feeds arbitrary bytes to the boot integrity scan as a plausibly
// named result file: OpenStore must never panic, never load an entry whose
// spec does not hash to the file name, and must keep a known-good entry
// loadable regardless of what sits next to it.
func FuzzStore(f *testing.F) {
	f.Add([]byte(`{"spec":{"workload":"sanity3","nvdlas":1,"memory":"HBM","inflight":16,"scale":32,"limit":8000000000000},"ticks":123}`))
	f.Add([]byte(`{"spec":`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"ticks":9}`))
	f.Add([]byte(strings.Repeat(`[`, 10000)))
	good := testSpec("HBM", 16)
	if buf, err := json.Marshal(storeEntry{Spec: good, Ticks: 777}); err == nil {
		f.Add(buf)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		first, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := first.Put(good, 777); err != nil {
			t.Fatal(err)
		}
		// The fuzz payload lands under a well-formed fingerprint-style name
		// (that is the hard case: garbage under a silly name never matches).
		name := fmt.Sprintf("%064x", len(data))
		if err := os.WriteFile(filepath.Join(dir, name+".json"), data, 0o644); err != nil {
			t.Fatal(err)
		}

		st, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if e, ok := st.Get(good.Fingerprint()); !ok || e.Ticks != 777 {
			t.Fatalf("good entry lost next to fuzz payload: %+v ok=%v", e, ok)
		}
		if e, ok := st.Get(name); ok && e.Spec.Fingerprint() != name {
			t.Fatalf("loaded an entry whose spec does not hash to its name: %+v", e)
		}
		if st.Len()+st.Quarantined() != 2 {
			t.Fatalf("len %d + quarantined %d != 2 files", st.Len(), st.Quarantined())
		}
	})
}
