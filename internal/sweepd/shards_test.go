package sweepd

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

// shardSpecs builds n distinct specs asking for the given shard count.
func shardSpecs(n, shards int) []experiments.RunSpec {
	inflights := []int{1, 2, 4, 8, 16, 32, 64, 128, 240, 3, 5, 6}
	specs := make([]experiments.RunSpec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, experiments.RunSpec{
			Workload: "sanity3", NVDLAs: 4, Memory: "ideal",
			Inflight: inflights[i], Scale: 32, Limit: sim.Second,
			Shards: shards,
		})
	}
	return specs
}

// TestShardedPointsBudgetCores asserts the worker-vs-shard core budget: on a
// 4-worker pool, points asking for 2 shards each must never run more than 2
// at a time (2 points × 2 shard goroutines = the 4-core budget), even though
// 4 worker goroutines are available to claim them.
func TestShardedPointsBudgetCores(t *testing.T) {
	const workers = 4
	var cur, peak atomic.Int64
	release := make(chan struct{})
	run := func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		<-release
		cur.Add(-1)
		return 1, nil
	}
	s, err := New(Config{Workers: workers, RunPoint: run})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	j, err := s.sched.submit(s.store, SubmitRequest{Specs: shardSpecs(6, 2)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Let the pool take everything it is willing to: concurrency must settle
	// at 2 (budget 4 / weight 2), not the 4 the worker count would allow.
	deadline := time.Now().Add(5 * time.Second)
	for cur.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if got := cur.Load(); got != 2 {
		t.Errorf("concurrent sharded points = %d, want 2 (budget %d, weight 2)", got, workers)
	}
	close(release)
	waitDone(t, j)
	if got := peak.Load(); got > 2 {
		t.Errorf("peak concurrent sharded points = %d, want <= 2", got)
	}
	res, ok := s.sched.results(j)
	if !ok {
		t.Fatal("job did not finish")
	}
	for _, r := range res {
		if r.Err != "" {
			t.Errorf("%v: %s", r.Spec, r.Err)
		}
	}
}

// TestOverWideShardedPointRunsSolo asserts the deadlock escape: a point whose
// shard demand exceeds the whole budget is admitted alone on an idle pool.
func TestOverWideShardedPointRunsSolo(t *testing.T) {
	var cur, peak atomic.Int64
	run := func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		cur.Add(-1)
		return 1, nil
	}
	s, err := New(Config{Workers: 2, RunPoint: run})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Start()
	j, err := s.sched.submit(s.store, SubmitRequest{Specs: shardSpecs(3, 5)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if got := peak.Load(); got != 1 {
		t.Errorf("peak concurrency for weight-5 points on a 2-core budget = %d, want 1", got)
	}
}

// TestPointWeightClampsToShards pins the weight function against soc.Build's
// shard clamp.
func TestPointWeightClampsToShards(t *testing.T) {
	cases := []struct {
		shards, nvdlas, want int
	}{
		{0, 4, 1}, {1, 4, 1}, {2, 4, 2}, {4, 4, 4},
		{8, 2, 3}, // clamped to 1 + NVDLAs
		{3, 0, 1},
	}
	for _, c := range cases {
		spec := experiments.RunSpec{Shards: c.shards, NVDLAs: c.nvdlas}
		if got := pointWeight(spec); got != c.want {
			t.Errorf("pointWeight(shards=%d, nvdlas=%d) = %d, want %d",
				c.shards, c.nvdlas, got, c.want)
		}
	}
}
