package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/guard"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/stats"
)

// Config tunes a sweep server. The zero value is a usable in-memory server
// with runtime.NumCPU() workers and no warm start.
type Config struct {
	// Workers is the simulation worker pool size; <= 0 means
	// runtime.NumCPU().
	Workers int
	// StoreDir persists results as <fingerprint>.json files; "" keeps the
	// store in memory only (it then dies with the process).
	StoreDir string
	// CkptDir is the shared warm-start checkpoint directory; with Warmup > 0
	// every worker populates and restores snapshots from it, so shards warm
	// each other and a restarted server inherits the previous one's prefixes.
	CkptDir string
	// Warmup enables warm-start checkpointing at this simulated tick
	// (0 = cold runs).
	Warmup sim.Tick
	// Guard attaches a default liveness watchdog to every point, so a hung
	// simulation fails its point with a diagnostic instead of stalling a
	// worker until the simulated time limit.
	Guard bool
	// Quota bounds any one client's live (queued or running) points;
	// 0 = unlimited. Joining an in-flight point or reading the store is
	// always free — the quota prices new simulation work only.
	Quota int
	// RunPoint overrides the per-point executor; nil means experiments.Run
	// with the options implied by Warmup/CkptDir/Guard. Tests use it to
	// count executions and inject failures.
	RunPoint func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error)
	// StreamPeriod is the progress stream's record period (0 = 1s). The e2e
	// tests shorten it so streams produce records quickly.
	StreamPeriod time.Duration
}

// Server is the sweep service: an HTTP handler plus the worker pool behind
// it. Construct with New, mount Handler on any mux or httptest server, call
// Start to launch the workers, and stop with Drain (finish the queue) or
// Close (abandon it).
type Server struct {
	cfg   Config
	store *Store
	sched *scheduler
	run   func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error)
	reg   *stats.Registry

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	draining bool
	started  bool
}

// New builds a server: opens (and recovers) the result store and composes
// the per-point executor from the config.
func New(cfg Config) (*Server, error) {
	store, err := OpenStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	s := &Server{cfg: cfg, store: store, sched: newScheduler()}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.run = cfg.RunPoint
	if s.run == nil {
		var opts []experiments.Option
		if cfg.Warmup > 0 {
			opts = append(opts, experiments.WithWarmStart(cfg.Warmup, experiments.NewCheckpointCache(cfg.CkptDir)))
		}
		if cfg.Guard {
			opts = append(opts, experiments.WithWatchdog(guard.Config{}))
		}
		s.run = func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			return experiments.Run(ctx, spec, opts...)
		}
	}
	s.reg = stats.NewRegistry()
	obs.RegisterHostStats(s.reg)
	s.reg.Register("sweepd.points.pending", "simulation points queued", func() float64 {
		_, _, pending, _ := s.sched.serverCounts()
		return float64(pending)
	})
	s.reg.Register("sweepd.points.running", "simulation points executing", func() float64 {
		_, _, _, running := s.sched.serverCounts()
		return float64(running)
	})
	s.reg.Register("sweepd.store.len", "results in the persistent store", func() float64 {
		return float64(store.Len())
	})
	return s, nil
}

// Start launches the worker pool. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// worker pulls points off the scheduler until it closes with an empty queue.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		p := s.sched.next()
		if p == nil {
			return
		}
		ticks, err := runPoint(s.ctx, s.run, p.spec)
		s.sched.complete(s.store, p, ticks, err)
	}
}

// Store exposes the result store (the e2e tests assert on its length).
func (s *Server) Store() *Store { return s.store }

// Drain stops accepting jobs, lets the workers finish every queued point,
// and returns when the pool has exited or ctx ends (in which case the
// remaining work is abandoned as in Close).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.sched.close()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// Close abandons the queue: in-flight points are cancelled through their
// context and the worker pool is awaited.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.sched.close()
	s.cancel()
	s.wg.Wait()
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/status", s.handleServerStatus)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	return mux
}

// writeJSON writes one JSON value with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, errorf("server is draining"))
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorf("decoding submit request: %v", err))
		return
	}
	if len(req.Specs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorf("empty batch: submit at least one spec"))
		return
	}
	for i, spec := range req.Specs {
		if err := spec.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorf("spec[%d]: %v", i, err))
			return
		}
	}
	j, err := s.sched.submit(s.store, req, s.cfg.Quota)
	if err != nil {
		code := http.StatusServiceUnavailable
		if s.cfg.Quota > 0 && !s.sched.isClosed() {
			code = http.StatusTooManyRequests
		}
		writeJSON(w, code, errorf("%v", err))
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.id, Points: len(j.points), Cached: j.cached})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.sched.status(j))
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorf("no such job %q", r.PathValue("id")))
		return
	}
	results, done := s.sched.results(j)
	if !done {
		writeJSON(w, http.StatusConflict, errorf("job %s is still running; poll status or stream", j.id))
		return
	}
	// Canonical encoding: compact records, one array, trailing newline —
	// byte-identical to sweepctl's local mode over the same batch.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(EncodeResults(results))
}

// EncodeResults renders the canonical results document. Both the results
// endpoint and sweepctl's local mode use it, so the two paths can be diffed
// byte for byte.
func EncodeResults(results []PointResult) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		// A struct of strings, integers and floats cannot fail to encode.
		panic("sweepd: encoding results: " + err.Error())
	}
	return buf.Bytes()
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorf("no such job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	// Stream interval records until the job finishes or the client leaves;
	// the streamer emits one final record on cancellation so even an
	// already-done job yields a complete snapshot.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-j.done:
		case <-ctx.Done():
		}
		cancel()
	}()
	streamer := &obs.HostIntervalStreamer{
		Reg:    s.reg,
		W:      w,
		Period: s.cfg.StreamPeriod,
		Annotate: func(rec *obs.IntervalRecord) {
			rec.Extra = s.sched.status(j)
		},
	}
	_ = streamer.Run(ctx)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.sched.status(j))
}

func (s *Server) handleServerStatus(w http.ResponseWriter, r *http.Request) {
	jobs, active, pending, running := s.sched.serverCounts()
	hits, misses, stale := obs.CkptCacheCounts()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, ServerStatus{
		Jobs: jobs, ActiveJobs: active,
		PointsPending: pending, PointsRunning: running,
		StoreLen: s.store.Len(), Draining: draining, Workers: s.cfg.Workers,
		CkptCache: CkptCacheCounts{Hits: hits, Misses: misses, Stale: stale},
	})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.sched.close()
	_, _, pending, running := s.sched.serverCounts()
	writeJSON(w, http.StatusOK, map[string]any{
		"draining":       true,
		"already":        already,
		"points_pending": pending,
		"points_running": running,
	})
}
