package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/guard"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/prof"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/stats"
)

// MetricsPrefix namespaces every family the metrics endpoint exposes.
const MetricsPrefix = "gem5rtl_"

// Config tunes a sweep server. The zero value is a usable in-memory server
// with runtime.NumCPU() workers, default retries and no warm start.
type Config struct {
	// Workers is the simulation worker pool size; <= 0 means
	// runtime.NumCPU(). It doubles as the core budget for sharded points: a
	// point whose RunSpec asks for N simulation shards claims N cores while
	// it runs, so a mixed queue of serial and sharded points never runs more
	// shard goroutines than the pool has workers (the scheduler admits an
	// over-wide point only on an otherwise idle pool).
	Workers int
	// StoreDir persists results as <fingerprint>.json files; "" keeps the
	// store in memory only (it then dies with the process). Quarantined
	// poison records live in its poison/ subdirectory, corrupt files moved
	// aside by the boot scan in quarantine/.
	StoreDir string
	// CkptDir is the shared warm-start checkpoint directory; with Warmup > 0
	// every worker populates and restores snapshots from it, so shards warm
	// each other and a restarted server inherits the previous one's prefixes.
	CkptDir string
	// Warmup enables warm-start checkpointing at this simulated tick
	// (0 = cold runs).
	Warmup sim.Tick
	// Guard attaches a default liveness watchdog to every point, so a hung
	// simulation fails its point with a diagnostic instead of stalling a
	// worker until the simulated time limit.
	Guard bool
	// Quota bounds any one client's live (queued or running) points;
	// 0 = unlimited. Joining an in-flight point or reading the store is
	// always free — the quota prices new simulation work only.
	Quota int
	// MaxQueue bounds the waiting queue (pending + retry-wait points); a
	// submission that would push past it is shed with HTTP 429. 0 = unbounded.
	MaxQueue int
	// Retry tunes the transient-failure retry loop; the zero value selects
	// the RetryPolicy defaults (3 attempts, 100ms..5s seeded backoff).
	Retry RetryPolicy
	// PointDeadline bounds one execution attempt of one point with a context
	// timeout (layered under the simulated-time watchdog, which cannot fire
	// if the host itself stalls). A blown deadline is a transient failure:
	// the point is evicted back to the retry loop. 0 = no deadline.
	PointDeadline time.Duration
	// RunPoint overrides the per-point executor; nil means experiments.Run
	// with the options implied by Warmup/CkptDir/Guard. Tests use it to
	// count executions and inject failures.
	RunPoint func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error)
	// Chaos, when non-nil, wraps the composed executor (including a custom
	// RunPoint) with seeded fault injection. Soak tests only.
	Chaos *Chaos
	// StreamPeriod is the progress stream's record period (0 = 1s). The e2e
	// tests shorten it so streams produce records quickly.
	StreamPeriod time.Duration
	// SelfProfile, when > 0, attaches the event-kernel self-profiler to
	// every simulated point (clock-read cadence in dispatches; use
	// sim.DefaultProfileEvery) and aggregates the per-component attribution
	// across points into the /v1/metrics selfprof families. Profiling is
	// observational — results and their canonical encoding are unchanged.
	// Ignored when RunPoint overrides the executor.
	SelfProfile int
}

// Server is the sweep service: an HTTP handler plus the worker pool behind
// it. Construct with New, mount Handler on any mux or httptest server, call
// Start to launch the workers, and stop with Drain (finish the queue) or
// Close (abandon it).
type Server struct {
	cfg    Config
	store  *Store
	poison *PoisonStore
	sched  *scheduler
	run    func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error)
	reg    *stats.Registry

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	live   atomic.Int64 // worker goroutines alive
	busy   atomic.Int64 // workers executing a point right now

	mu       sync.Mutex
	draining bool
	started  bool

	// attr aggregates per-point self-profiler attribution (Config.SelfProfile)
	// across every simulated point since boot, for /v1/metrics.
	attrMu sync.Mutex
	attr   *prof.Report
}

// New builds a server: opens (and recovers) the result and poison stores and
// composes the per-point executor from the config.
func New(cfg Config) (*Server, error) {
	store, err := OpenStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	poisonDir := ""
	if cfg.StoreDir != "" {
		poisonDir = filepath.Join(cfg.StoreDir, PoisonDir)
	}
	poison, err := OpenPoisonStore(poisonDir)
	if err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	s := &Server{
		cfg: cfg, store: store, poison: poison,
		sched: newScheduler(poison, cfg.Retry, cfg.MaxQueue, cfg.Workers),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.run = cfg.RunPoint
	if s.run == nil {
		var opts []experiments.Option
		if cfg.Warmup > 0 {
			opts = append(opts, experiments.WithWarmStart(cfg.Warmup, experiments.NewCheckpointCache(cfg.CkptDir)))
		}
		if cfg.Guard {
			opts = append(opts, experiments.WithWatchdog(guard.Config{}))
		}
		s.run = func(ctx context.Context, spec experiments.RunSpec) (sim.Tick, error) {
			ropts := opts
			if cfg.SelfProfile > 0 {
				// Per-call option composition keeps the shared opts slice free
				// of per-point sinks; the sink merges under the server mutex.
				ropts = append(append([]experiments.Option{}, opts...),
					experiments.WithSelfProfile(cfg.SelfProfile, s.recordAttr))
			}
			return experiments.Run(ctx, spec, ropts...)
		}
	}
	if cfg.Chaos != nil {
		// The chaos layer wraps the fully composed executor, so injected
		// faults exercise the same retry/quarantine path real failures take.
		s.run = cfg.Chaos.Wrap(s.run)
	}
	s.reg = stats.NewRegistry()
	obs.RegisterHostStats(s.reg)
	s.reg.Register("sweepd.points.pending", "simulation points queued", func() float64 {
		return float64(s.sched.counts().pending)
	})
	s.reg.Register("sweepd.points.running", "simulation points executing", func() float64 {
		return float64(s.sched.counts().running)
	})
	s.reg.Register("sweepd.points.retrying", "points waiting out a retry backoff", func() float64 {
		return float64(s.sched.counts().delayed)
	})
	s.reg.Register("sweepd.retries", "retry attempts scheduled since boot", func() float64 {
		return float64(s.sched.counts().retries)
	})
	s.reg.Register("sweepd.quarantined", "poison points quarantined", func() float64 {
		return float64(poison.Len())
	})
	s.reg.Register("sweepd.store.len", "results in the persistent store", func() float64 {
		return float64(store.Len())
	})
	s.reg.Register("sweepd.workers.live", "worker goroutines alive", func() float64 {
		return float64(s.live.Load())
	})
	s.reg.Register("sweepd.workers.busy", "workers executing a point right now", func() float64 {
		return float64(s.busy.Load())
	})
	s.reg.Register("sweepd.workers.utilization", "fraction of the worker pool executing a point", func() float64 {
		return float64(s.busy.Load()) / float64(s.cfg.Workers)
	})
	s.reg.Register("sweepd.cores.busy", "cores claimed by running points (sharded points claim their shard count)", func() float64 {
		return float64(s.sched.counts().coresBusy)
	})
	return s, nil
}

// recordAttr folds one point's self-profiler attribution report into the
// server-wide aggregate that /v1/metrics serves.
func (s *Server) recordAttr(rep *prof.Report) {
	if rep == nil {
		return
	}
	s.attrMu.Lock()
	if s.attr == nil {
		s.attr = &prof.Report{}
	}
	s.attr.Merge(rep)
	s.attrMu.Unlock()
}

// Attr returns a snapshot of the aggregated self-profiler attribution, or nil
// when profiling is off or no point has completed yet.
func (s *Server) Attr() *prof.Report {
	s.attrMu.Lock()
	defer s.attrMu.Unlock()
	return s.attr.Clone()
}

// Start launches the worker pool. Idempotent.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		s.live.Add(1)
		go s.worker()
	}
}

// worker pulls points off the scheduler until it closes with an empty queue.
// Each attempt runs under the per-point deadline (if configured); the outcome
// settles through the retry/quarantine state machine.
func (s *Server) worker() {
	defer s.wg.Done()
	defer s.live.Add(-1)
	for {
		p := s.sched.next()
		if p == nil {
			return
		}
		s.busy.Add(1)
		ctx, cancel := s.ctx, context.CancelFunc(func() {})
		if s.cfg.PointDeadline > 0 {
			ctx, cancel = context.WithTimeout(s.ctx, s.cfg.PointDeadline)
		}
		ticks, err := runPoint(ctx, s.run, p.spec)
		cancel()
		s.busy.Add(-1)
		s.sched.settle(s.store, p, ticks, err)
	}
}

// Store exposes the result store (the e2e tests assert on its length).
func (s *Server) Store() *Store { return s.store }

// Poison exposes the quarantine (poison) store.
func (s *Server) Poison() *PoisonStore { return s.poison }

// Drain stops accepting jobs, lets the workers finish every queued point
// (retry-waiting points skip their backoff and settle immediately), and
// returns when the pool has exited or ctx ends (in which case the remaining
// work is abandoned as in Close).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.sched.close()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// Close abandons the queue: in-flight points are cancelled through their
// context (failing without retry or quarantine — a resubmission after
// restart simulates them fresh) and the worker pool is awaited.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.sched.close()
	s.cancel()
	s.wg.Wait()
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/status", s.handleServerStatus)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/quarantine", s.handleQuarantineList)
	mux.HandleFunc("DELETE /v1/quarantine/{fp}", s.handleUnquarantine)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	return mux
}

// writeJSON writes one JSON value with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Retry-After hints, in seconds: load shedding clears as soon as points
// settle, so retry quickly; a draining server is going away, so back off.
const (
	retryAfterShed  = "1"
	retryAfterDrain = "5"
)

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", retryAfterDrain)
		writeJSON(w, http.StatusServiceUnavailable, errorf("%v", ErrDraining))
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorf("decoding submit request: %v", err))
		return
	}
	if len(req.Specs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorf("empty batch: submit at least one spec"))
		return
	}
	for i, spec := range req.Specs {
		if err := spec.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorf("spec[%d]: %v", i, err))
			return
		}
	}
	j, err := s.sched.submit(s.store, req, s.cfg.Quota)
	if err != nil {
		var quotaErr *QuotaError
		var fullErr *QueueFullError
		switch {
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", retryAfterDrain)
			writeJSON(w, http.StatusServiceUnavailable, errorf("%v", err))
		case errors.As(err, &quotaErr), errors.As(err, &fullErr):
			w.Header().Set("Retry-After", retryAfterShed)
			writeJSON(w, http.StatusTooManyRequests, errorf("%v", err))
		default:
			writeJSON(w, http.StatusInternalServerError, errorf("%v", err))
		}
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.id, Points: len(j.points), Cached: j.cached})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.sched.status(j))
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorf("no such job %q", r.PathValue("id")))
		return
	}
	results, done := s.sched.results(j)
	if !done {
		writeJSON(w, http.StatusConflict, errorf("job %s is still running; poll status or stream", j.id))
		return
	}
	// Canonical encoding: compact records, one array, trailing newline —
	// byte-identical to sweepctl's local mode over the same batch.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(EncodeResults(results))
}

// EncodeResults renders the canonical results document. Both the results
// endpoint and sweepctl's local mode use it, so the two paths can be diffed
// byte for byte.
func EncodeResults(results []PointResult) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		// A struct of strings, integers and floats cannot fail to encode.
		panic("sweepd: encoding results: " + err.Error())
	}
	return buf.Bytes()
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorf("no such job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	// Stream interval records until the job finishes or the client leaves;
	// the streamer emits one final record on cancellation so even an
	// already-done job yields a complete snapshot.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-j.done:
		case <-ctx.Done():
		}
		cancel()
	}()
	streamer := &obs.HostIntervalStreamer{
		Reg:    s.reg,
		W:      w,
		Period: s.cfg.StreamPeriod,
		Annotate: func(rec *obs.IntervalRecord) {
			rec.Extra = s.sched.status(j)
		},
	}
	_ = streamer.Run(ctx)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorf("no such job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.sched.status(j))
}

func (s *Server) handleServerStatus(w http.ResponseWriter, r *http.Request) {
	c := s.sched.counts()
	hits, misses, stale, corrupt := obs.CkptCacheCounts()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, ServerStatus{
		Jobs: c.jobs, ActiveJobs: c.active,
		PointsPending: c.pending, PointsRunning: c.running,
		PointsRetrying: c.delayed, Retries: c.retries,
		StoreLen:    s.store.Len(),
		Quarantined: s.poison.Len(), StoreQuarantined: s.store.Quarantined(),
		Draining: draining, Workers: s.cfg.Workers,
		CkptCache: CkptCacheCounts{Hits: hits, Misses: misses, Stale: stale, Corrupt: corrupt},
	})
}

// handleMetrics serves the fleet metrics plane in the Prometheus text
// exposition format: every registry statistic (queue depths, retry and
// quarantine counters, checkpoint-cache effectiveness, worker utilization)
// as a gauge family, plus — when Config.SelfProfile is on — the aggregated
// per-component attribution counter families. The body is rendered to a
// buffer first so a slow client can never block the stats registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	_ = prof.WritePromRegistry(&buf, MetricsPrefix, s.reg)
	if rep := s.Attr(); rep != nil {
		_ = rep.WriteProm(&buf, MetricsPrefix)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c := s.sched.counts()
	s.mu.Lock()
	draining, started := s.draining, s.started
	s.mu.Unlock()
	live := int(s.live.Load())
	h := HealthStatus{
		Draining:    draining,
		WorkersLive: live, WorkersBusy: int(s.busy.Load()),
		QueueDepth: c.pending + c.delayed, Retrying: c.delayed,
		Quarantined: s.poison.Len(), StoreQuarantined: s.store.Quarantined(),
	}
	h.OK = !draining && started && live == s.cfg.Workers
	code := http.StatusOK
	if !h.OK {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleQuarantineList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, QuarantineList{
		Points:     s.poison.List(),
		StoreFiles: s.store.Quarantined(),
	})
}

func (s *Server) handleUnquarantine(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !s.poison.Remove(fp) {
		writeJSON(w, http.StatusNotFound, errorf("fingerprint %q is not quarantined", fp))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": fp})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.sched.close()
	c := s.sched.counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"draining":       true,
		"already":        already,
		"points_pending": c.pending,
		"points_running": c.running,
	})
}
