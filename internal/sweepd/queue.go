package sweepd

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

// pointState is the lifecycle of one deduplicated simulation point:
//
//	pending ──next──▶ running ──settle──▶ done        (success, persisted)
//	   ▲                  │
//	   │                  ├─────────────▶ failed      (cancelled at shutdown)
//	   │                  │
//	   │                  ├─────────────▶ quarantined (permanent failure, or
//	   │                  │                            retry budget exhausted)
//	retry-wait ◀──────────┘               (transient failure, attempts left)
//
//	pending / retry-wait ───cancel──────▶ skipped     (no job wants it)
//
// Every submitted point reaches exactly one terminal state (done, failed,
// skipped or quarantined); the chaos soak test asserts this invariant under
// injected panics, hangs and faults.
type pointState int

const (
	pointPending pointState = iota
	pointRetryWait
	pointRunning
	// Terminal states follow; terminal() relies on the order.
	pointDone
	pointFailed
	pointSkipped // every interested job cancelled before it ran
	pointQuarantined
)

// terminal reports whether the point has reached a final state.
func (s pointState) terminal() bool { return s >= pointDone }

// point is one deduplicated unit of simulation work. Jobs that need the same
// fingerprint — within a batch, across batches, across clients — share the
// point: it simulates once and everyone reads the result.
//
// attempts and errs are owner-only fields: between next() claiming the point
// and settle() publishing it, only the claiming worker touches them, so the
// settling worker may read them without the scheduler lock (it needs them
// outside the lock to write the poison record before publishing).
type point struct {
	spec     experiments.RunSpec
	fp       string
	priority int    // max over interested jobs
	seq      uint64 // submission order, the tie-breaker
	index    int    // heap position, -1 when not queued
	state    pointState
	attempts int      // executions started (next() increments)
	errs     []string // every failed attempt's error, in order
	ticks    sim.Tick
	err      error
	jobs     map[*job]struct{} // jobs still interested in the result
}

// job is one submitted batch plus the hidden ideal baselines its Perf
// normalisation needs.
type job struct {
	id        string
	client    string
	priority  int
	specs     []experiments.RunSpec // client-visible, submit order
	points    map[string]*point     // every needed point, keyed by fingerprint
	cached    int                   // points served from the store at submit
	cancelled bool
	done      chan struct{} // closed when the job reaches a terminal state
	finished  bool
}

// pointHeap orders pending points by (priority desc, seq asc): higher
// priority first, submission order within a priority band.
type pointHeap []*point

func (h pointHeap) Len() int { return len(h) }
func (h pointHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h pointHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *pointHeap) Push(x any) {
	p := x.(*point)
	p.index = len(*h)
	*h = append(*h, p)
}
func (h *pointHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	p.index = -1
	*h = old[:n-1]
	return p
}

// ErrDraining rejects submissions to a server that has stopped intake.
var ErrDraining = errors.New("sweepd: server is draining")

// QuotaError rejects a submission that would push a client past its live-point
// quota. It maps to HTTP 429.
type QuotaError struct {
	Client string
	// Live is the client's current queued-or-running point count, Fresh the
	// new simulation work the rejected batch would add, Quota the limit.
	Live, Fresh, Quota int
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("sweepd: client %q quota exceeded: %d live + %d new points > %d",
		e.Client, e.Live, e.Fresh, e.Quota)
}

// QueueFullError sheds load when a submission would push the queue past its
// configured depth bound. It maps to HTTP 429.
type QueueFullError struct {
	// Queued counts points waiting (pending + retry-wait), Fresh the new
	// points the rejected batch would add, Max the bound.
	Queued, Fresh, Max int
}

// Error implements error.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("sweepd: queue full: %d queued + %d new points > %d",
		e.Queued, e.Fresh, e.Max)
}

// scheduler owns the job table, the deduplicated point set and the pending
// heap under one mutex. Workers block on cond until a point is available or
// the scheduler closes. It also owns the fault-tolerance policy: the retry
// schedule, the retry-wait timers, the queue depth bound, and the poison
// store of quarantined points.
type scheduler struct {
	retry    RetryPolicy
	poison   *PoisonStore
	maxQueue int
	cores    int // core budget shared by serial workers and shard goroutines

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      map[string]*job
	jobSeq    int
	points    map[string]*point // live (non-terminal) points by fingerprint
	pending   pointHeap
	timers    map[*point]*time.Timer // retry-wait timers, by point
	seq       uint64
	running   int
	coresBusy int    // sum of running points' core weights
	delayed   int    // points in retry-wait
	retries   uint64 // total retries scheduled since boot
	closed    bool
}

func newScheduler(poison *PoisonStore, retry RetryPolicy, maxQueue, cores int) *scheduler {
	s := &scheduler{
		retry: retry.withDefaults(), poison: poison, maxQueue: maxQueue,
		cores: cores,
		jobs:  map[string]*job{}, points: map[string]*point{},
		timers: map[*point]*time.Timer{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// pointWeight is the core demand of one running point: a serial point
// occupies its worker goroutine, a sharded point (spec.Shards > 1) runs that
// many shard goroutines concurrently. The clamp mirrors soc.Build's — a
// build never hosts more than 1+NVDLAs shards — so an over-asked spec is
// priced at what it will actually use.
func pointWeight(spec experiments.RunSpec) int {
	w := spec.Shards
	if max := 1 + spec.NVDLAs; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// submit registers a job for specs. For every spec (and the ideal baseline of
// every technology spec) it either reads the store, serves a quarantine
// record as an error, joins an in-flight point, or queues a new one. quota
// bounds the client's live points; 0 means unlimited. The store lookup
// happens here, under the scheduler lock, so a concurrent worker cannot
// complete a point between the check and the enqueue.
func (s *scheduler) submit(st *Store, req SubmitRequest, quota int) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrDraining
	}

	// The job needs each submitted spec plus the baseline it normalises
	// against, deduplicated by fingerprint.
	need := make([]experiments.RunSpec, 0, 2*len(req.Specs))
	seen := map[string]bool{}
	for _, spec := range req.Specs {
		for _, sp := range []experiments.RunSpec{spec, spec.Baseline()} {
			if fp := sp.Fingerprint(); !seen[fp] {
				seen[fp] = true
				need = append(need, sp)
			}
		}
	}

	// fresh counts the genuinely new simulation work: not stored, not
	// quarantined, not already owned by a live point. Both admission checks
	// (per-client quota, global queue depth) price fresh points only —
	// reading a cached result or joining an in-flight point is free.
	fresh := 0
	for _, sp := range need {
		fp := sp.Fingerprint()
		if _, ok := st.Get(fp); ok {
			continue
		}
		if _, ok := s.poison.Get(fp); ok {
			continue
		}
		if _, ok := s.points[fp]; ok {
			continue
		}
		fresh++
	}
	if quota > 0 {
		if live := s.clientLivePointsLocked(req.Client); live+fresh > quota {
			return nil, &QuotaError{Client: req.Client, Live: live, Fresh: fresh, Quota: quota}
		}
	}
	if queued := s.pending.Len() + s.delayed; s.maxQueue > 0 && queued+fresh > s.maxQueue {
		return nil, &QueueFullError{Queued: queued, Fresh: fresh, Max: s.maxQueue}
	}

	s.jobSeq++
	j := &job{
		id:       fmt.Sprintf("job-%06d", s.jobSeq),
		client:   req.Client,
		priority: req.Priority,
		specs:    req.Specs,
		points:   map[string]*point{},
		done:     make(chan struct{}),
	}
	for _, sp := range need {
		fp := sp.Fingerprint()
		if ent, ok := st.Get(fp); ok {
			// Served from the persistent store: a terminal point private to
			// this job, never queued.
			j.points[fp] = &point{spec: sp, fp: fp, state: pointDone, ticks: ent.Ticks, index: -1}
			j.cached++
			continue
		}
		if rec, ok := s.poison.Get(fp); ok {
			// Quarantined poison: served as a terminal error instead of
			// burning workers on a point that has already exhausted its
			// budget. DELETE /v1/quarantine/{fp} clears the record.
			j.points[fp] = &point{spec: sp, fp: fp, state: pointQuarantined, err: rec.Err(), index: -1}
			continue
		}
		if p, ok := s.points[fp]; ok {
			// In flight or queued: join it, and let a high-priority job pull
			// a shared pending point up the queue.
			p.jobs[j] = struct{}{}
			if req.Priority > p.priority && p.index >= 0 {
				p.priority = req.Priority
				heap.Fix(&s.pending, p.index)
			}
			j.points[fp] = p
			continue
		}
		s.seq++
		p := &point{
			spec: sp, fp: fp, priority: req.Priority, seq: s.seq,
			index: -1, jobs: map[*job]struct{}{j: {}},
		}
		s.points[fp] = p
		heap.Push(&s.pending, p)
		j.points[fp] = p
	}
	s.jobs[j.id] = j
	s.refreshJobLocked(j)
	s.cond.Broadcast()
	return j, nil
}

// clientLivePointsLocked counts the non-terminal points a client is
// (co-)responsible for.
func (s *scheduler) clientLivePointsLocked(client string) int {
	n := 0
	for _, p := range s.points {
		if p.state.terminal() {
			continue
		}
		for j := range p.jobs {
			if j.client == client {
				n++
				break
			}
		}
	}
	return n
}

// next blocks until a pending point is available and claims it, or returns
// nil when the scheduler closes with an empty queue. Claiming charges one
// execution attempt and the point's core weight against the budget: a
// sharded point claims Shards cores, so workers × shards never oversubscribe
// the pool (worker-vs-shard core budgeting). The heap head is the only
// candidate — budget pressure delays lower-priority points, it never
// reorders them — and an idle scheduler always admits the head even when
// its weight alone exceeds the budget, so an over-wide point degrades to
// running solo instead of deadlocking.
func (s *scheduler) next() *point {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.pending.Len() > 0 {
			if w := pointWeight(s.pending[0].spec); s.coresBusy == 0 || s.coresBusy+w <= s.cores {
				p := heap.Pop(&s.pending).(*point)
				p.state = pointRunning
				p.attempts++
				s.running++
				s.coresBusy += w
				return p
			}
		} else if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// settle resolves one execution attempt of a claimed point. Success persists
// to the result store and publishes done. A failure routes through the
// taxonomy (see classify): cancellation publishes a plain failure so a
// post-restart resubmission simulates fresh; a permanent error quarantines
// immediately; a transient error either re-queues the point after its seeded
// backoff or — once the attempt budget is spent — quarantines it as poison.
func (s *scheduler) settle(st *Store, p *point, ticks sim.Tick, err error) {
	if err == nil {
		// Persist before publishing: a job observed as done must survive a
		// restart. A store write failure degrades to memory-only (the run
		// itself succeeded).
		_ = st.Put(p.spec, ticks)
		s.publish(p, pointDone, ticks, nil)
		return
	}
	p.errs = append(p.errs, err.Error()) // owner-only until published
	switch classify(err) {
	case classCancelled:
		s.publish(p, pointFailed, 0, err)
	case classPermanent:
		s.quarantinePoint(p, "permanent", err)
	default: // classTransient
		if p.attempts >= s.retry.MaxAttempts {
			s.quarantinePoint(p, "retries-exhausted", err)
			return
		}
		s.requeue(p, err)
	}
}

// publish moves a claimed point to a terminal state and settles every job
// that was waiting on it.
func (s *scheduler) publish(p *point, state pointState, ticks sim.Tick, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	s.coresBusy -= pointWeight(p.spec)
	p.ticks = ticks
	p.err = err
	p.state = state
	delete(s.points, p.fp)
	for j := range p.jobs {
		s.refreshJobLocked(j)
	}
	s.cond.Broadcast()
}

// quarantinePoint persists the poison record — before publishing, mirroring
// the persist-before-publish ordering of successful results — and publishes
// the point as quarantined.
func (s *scheduler) quarantinePoint(p *point, class string, err error) {
	_ = s.poison.Put(p.fp, PoisonRecord{
		Fingerprint: p.fp, Spec: p.spec, Attempts: p.attempts,
		Class: class, Errors: p.errs,
	})
	s.publish(p, pointQuarantined, 0, err)
}

// requeue schedules the retry of a transiently failed point after its seeded
// backoff. On a closed (draining) scheduler the point skips the wait and goes
// straight back on the heap so the drain settles now — the attempt budget
// still bounds total work. A point every job has abandoned is skipped
// instead of retried.
func (s *scheduler) requeue(p *point, err error) {
	delay := s.retry.Delay(p.fp, p.attempts)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	s.coresBusy -= pointWeight(p.spec)
	s.retries++
	p.err = err
	if len(p.jobs) == 0 {
		p.state = pointSkipped
		p.err = fmt.Errorf("sweepd: cancelled before running")
		delete(s.points, p.fp)
		s.cond.Broadcast()
		return
	}
	if s.closed {
		p.state = pointPending
		heap.Push(&s.pending, p)
		s.cond.Broadcast()
		return
	}
	p.state = pointRetryWait
	s.delayed++
	s.timers[p] = time.AfterFunc(delay, func() { s.releaseRetry(p) })
}

// releaseRetry moves a retry-wait point back onto the pending heap when its
// backoff expires. A point that left retry-wait some other way (cancelled,
// flushed by close) is left alone.
func (s *scheduler) releaseRetry(p *point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.state != pointRetryWait {
		return
	}
	delete(s.timers, p)
	s.delayed--
	p.state = pointPending
	heap.Push(&s.pending, p)
	s.cond.Broadcast()
}

// cancel marks a job cancelled and withdraws its interest from every queued
// or retry-waiting point; points no other job wants are skipped without
// simulating. Running points complete normally — their results are still
// worth storing.
func (s *scheduler) cancel(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	if j.cancelled || j.finished {
		return j, true
	}
	j.cancelled = true
	for _, p := range j.points {
		if p.jobs == nil {
			continue
		}
		delete(p.jobs, j)
		if len(p.jobs) > 0 {
			continue
		}
		switch p.state {
		case pointPending:
			heap.Remove(&s.pending, p.index)
		case pointRetryWait:
			if t := s.timers[p]; t != nil {
				t.Stop()
				delete(s.timers, p)
			}
			s.delayed--
		default:
			continue
		}
		p.state = pointSkipped
		p.err = fmt.Errorf("sweepd: cancelled before running")
		delete(s.points, p.fp)
	}
	s.finishJobLocked(j)
	s.cond.Broadcast()
	return j, true
}

// refreshJobLocked closes the job's done channel once every point it needs
// is terminal.
func (s *scheduler) refreshJobLocked(j *job) {
	if j.finished || j.cancelled {
		return
	}
	for _, p := range j.points {
		if !p.state.terminal() {
			return
		}
	}
	s.finishJobLocked(j)
}

func (s *scheduler) finishJobLocked(j *job) {
	if !j.finished {
		j.finished = true
		close(j.done)
	}
}

// get looks a job up by ID.
func (s *scheduler) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// status snapshots one job. Retry-waiting points count as pending: from the
// client's point of view they are queued work.
func (s *scheduler) status(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		ID: j.id, Client: j.client, Priority: j.priority,
		Total: len(j.points), CachedAtSubmit: j.cached, State: JobRunning,
	}
	for _, p := range j.points {
		switch p.state {
		case pointDone:
			st.Done++
		case pointFailed, pointSkipped, pointQuarantined:
			st.Failed++
		case pointRunning:
			st.Running++
		default:
			st.Pending++
		}
	}
	if j.cancelled {
		st.State = JobCancelled
	} else if j.finished {
		st.State = JobDone
	}
	return st
}

// results assembles the canonical per-point records in submit order. The
// Perf of a technology point divides its baseline's ticks by its own, the
// exact computation of experiments.Runner.Sweep.
func (s *scheduler) results(j *job) ([]PointResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !j.finished {
		return nil, false
	}
	out := make([]PointResult, len(j.specs))
	for i, spec := range j.specs {
		p := j.points[spec.Fingerprint()]
		res := PointResult{Spec: spec}
		switch {
		case p.state != pointDone:
			res.Err = pointErrString(p)
		case spec.IsIdeal():
			res.Ticks, res.Perf = p.ticks, 1
		default:
			res.Ticks = p.ticks
			base := j.points[spec.Baseline().Fingerprint()]
			if base.state != pointDone {
				res.Ticks = 0
				res.Err = fmt.Sprintf("ideal baseline for %v: %s", spec, pointErrString(base))
			} else {
				res.Perf = float64(base.ticks) / float64(p.ticks)
			}
		}
		out[i] = res
	}
	return out, true
}

func pointErrString(p *point) string {
	if p.err != nil {
		return p.err.Error()
	}
	return "sweepd: point not run"
}

// schedCounts snapshots the queue-level numbers for the status and health
// endpoints.
type schedCounts struct {
	jobs, active              int
	pending, running, delayed int
	coresBusy                 int
	retries                   uint64
}

func (s *scheduler) counts() schedCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := schedCounts{
		jobs: len(s.jobs), pending: s.pending.Len(),
		running: s.running, coresBusy: s.coresBusy,
		delayed: s.delayed, retries: s.retries,
	}
	for _, j := range s.jobs {
		if !j.finished {
			c.active++
		}
	}
	return c
}

// close stops the intake (submit returns ErrDraining), flushes every
// retry-wait point straight onto the heap — a drain should settle retries
// now, not after their backoff — and wakes every blocked worker so they
// drain the remaining queue and exit.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	for p, t := range s.timers {
		t.Stop()
		delete(s.timers, p)
		if p.state == pointRetryWait {
			s.delayed--
			p.state = pointPending
			heap.Push(&s.pending, p)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runPoint executes one point with the same panic recovery as the in-process
// runner: a diverging simulation (or a chaos-injected panic) fails its point
// as a transient error — the point is evicted back to the retry loop, the
// worker survives, the job keeps going.
func runPoint(ctx context.Context, run func(context.Context, experiments.RunSpec) (sim.Tick, error),
	spec experiments.RunSpec) (ticks sim.Tick, err error) {
	defer func() {
		if p := recover(); p != nil {
			ticks, err = 0, fmt.Errorf("sweepd: %v panicked: %v\n%s", spec, p, debug.Stack())
		}
	}()
	return run(ctx, spec)
}
