package sweepd

import (
	"container/heap"
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

// pointState is the lifecycle of one deduplicated simulation point.
type pointState int

const (
	pointPending pointState = iota
	pointRunning
	pointDone
	pointFailed
	pointSkipped // every interested job cancelled before it ran
)

// terminal reports whether the point has reached a final state.
func (s pointState) terminal() bool { return s >= pointDone }

// point is one deduplicated unit of simulation work. Jobs that need the same
// fingerprint — within a batch, across batches, across clients — share the
// point: it simulates once and everyone reads the result.
type point struct {
	spec     experiments.RunSpec
	fp       string
	priority int    // max over interested jobs
	seq      uint64 // submission order, the tie-breaker
	index    int    // heap position, -1 when not queued
	state    pointState
	ticks    sim.Tick
	err      error
	jobs     map[*job]struct{} // jobs still interested in the result
}

// job is one submitted batch plus the hidden ideal baselines its Perf
// normalisation needs.
type job struct {
	id        string
	client    string
	priority  int
	specs     []experiments.RunSpec // client-visible, submit order
	points    map[string]*point     // every needed point, keyed by fingerprint
	cached    int                   // points served from the store at submit
	cancelled bool
	done      chan struct{} // closed when the job reaches a terminal state
	finished  bool
}

// pointHeap orders pending points by (priority desc, seq asc): higher
// priority first, submission order within a priority band.
type pointHeap []*point

func (h pointHeap) Len() int { return len(h) }
func (h pointHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h pointHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *pointHeap) Push(x any) {
	p := x.(*point)
	p.index = len(*h)
	*h = append(*h, p)
}
func (h *pointHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	p.index = -1
	*h = old[:n-1]
	return p
}

// scheduler owns the job table, the deduplicated point set and the pending
// heap under one mutex. Workers block on cond until a point is available or
// the scheduler closes.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*job
	jobSeq  int
	points  map[string]*point // live (non-terminal) points by fingerprint
	pending pointHeap
	seq     uint64
	running int
	closed  bool
}

func newScheduler() *scheduler {
	s := &scheduler{jobs: map[string]*job{}, points: map[string]*point{}}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// submit registers a job for specs. For every spec (and the ideal baseline of
// every technology spec) it either reads the store, joins an in-flight
// point, or queues a new one. quota bounds the client's live points; 0 means
// unlimited. The store lookup happens here, under the scheduler lock, so a
// concurrent worker cannot complete a point between the check and the
// enqueue.
func (s *scheduler) submit(st *Store, req SubmitRequest, quota int) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("sweepd: server is draining")
	}

	// The job needs each submitted spec plus the baseline it normalises
	// against, deduplicated by fingerprint.
	need := make([]experiments.RunSpec, 0, 2*len(req.Specs))
	seen := map[string]bool{}
	for _, spec := range req.Specs {
		for _, sp := range []experiments.RunSpec{spec, spec.Baseline()} {
			if fp := sp.Fingerprint(); !seen[fp] {
				seen[fp] = true
				need = append(need, sp)
			}
		}
	}

	if quota > 0 {
		live := s.clientLivePointsLocked(req.Client)
		fresh := 0
		for _, sp := range need {
			fp := sp.Fingerprint()
			if _, ok := st.Get(fp); ok {
				continue
			}
			if _, ok := s.points[fp]; ok {
				continue // already owned by someone; joining is free
			}
			fresh++
		}
		if live+fresh > quota {
			return nil, fmt.Errorf("sweepd: client %q quota exceeded: %d live + %d new points > %d",
				req.Client, live, fresh, quota)
		}
	}

	s.jobSeq++
	j := &job{
		id:       fmt.Sprintf("job-%06d", s.jobSeq),
		client:   req.Client,
		priority: req.Priority,
		specs:    req.Specs,
		points:   map[string]*point{},
		done:     make(chan struct{}),
	}
	for _, sp := range need {
		fp := sp.Fingerprint()
		if ent, ok := st.Get(fp); ok {
			// Served from the persistent store: a terminal point private to
			// this job, never queued.
			j.points[fp] = &point{spec: sp, fp: fp, state: pointDone, ticks: ent.Ticks, index: -1}
			j.cached++
			continue
		}
		if p, ok := s.points[fp]; ok {
			// In flight or queued: join it, and let a high-priority job pull
			// a shared pending point up the queue.
			p.jobs[j] = struct{}{}
			if req.Priority > p.priority && p.index >= 0 {
				p.priority = req.Priority
				heap.Fix(&s.pending, p.index)
			}
			j.points[fp] = p
			continue
		}
		s.seq++
		p := &point{
			spec: sp, fp: fp, priority: req.Priority, seq: s.seq,
			index: -1, jobs: map[*job]struct{}{j: {}},
		}
		s.points[fp] = p
		heap.Push(&s.pending, p)
		j.points[fp] = p
	}
	s.jobs[j.id] = j
	s.refreshJobLocked(j)
	s.cond.Broadcast()
	return j, nil
}

// clientLivePointsLocked counts the non-terminal points a client is
// (co-)responsible for.
func (s *scheduler) clientLivePointsLocked(client string) int {
	n := 0
	for _, p := range s.points {
		if p.state.terminal() {
			continue
		}
		for j := range p.jobs {
			if j.client == client {
				n++
				break
			}
		}
	}
	return n
}

// next blocks until a pending point is available and claims it, or returns
// nil when the scheduler closes with an empty queue.
func (s *scheduler) next() *point {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.pending.Len() > 0 {
			p := heap.Pop(&s.pending).(*point)
			p.state = pointRunning
			s.running++
			return p
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// complete records a finished point, persists a success to the store, and
// settles every job that was waiting on it.
func (s *scheduler) complete(st *Store, p *point, ticks sim.Tick, err error) {
	if err == nil {
		// Persist before publishing: a job observed as done must survive a
		// restart. A store write failure degrades to memory-only (the run
		// itself succeeded).
		_ = st.Put(p.spec, ticks)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	p.ticks = ticks
	p.err = err
	if err != nil {
		p.state = pointFailed
	} else {
		p.state = pointDone
	}
	delete(s.points, p.fp)
	for j := range p.jobs {
		s.refreshJobLocked(j)
	}
	s.cond.Broadcast()
}

// cancel marks a job cancelled and withdraws its interest from every pending
// point; points no other job wants are skipped without simulating. Running
// points complete normally — their results are still worth storing.
func (s *scheduler) cancel(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	if j.cancelled || j.finished {
		return j, true
	}
	j.cancelled = true
	for _, p := range j.points {
		if p.jobs == nil {
			continue
		}
		delete(p.jobs, j)
		if p.state == pointPending && len(p.jobs) == 0 {
			heap.Remove(&s.pending, p.index)
			p.state = pointSkipped
			p.err = fmt.Errorf("sweepd: cancelled before running")
			delete(s.points, p.fp)
		}
	}
	s.finishJobLocked(j)
	s.cond.Broadcast()
	return j, true
}

// refreshJobLocked closes the job's done channel once every point it needs
// is terminal.
func (s *scheduler) refreshJobLocked(j *job) {
	if j.finished || j.cancelled {
		return
	}
	for _, p := range j.points {
		if !p.state.terminal() {
			return
		}
	}
	s.finishJobLocked(j)
}

func (s *scheduler) finishJobLocked(j *job) {
	if !j.finished {
		j.finished = true
		close(j.done)
	}
}

// get looks a job up by ID.
func (s *scheduler) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// status snapshots one job.
func (s *scheduler) status(j *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		ID: j.id, Client: j.client, Priority: j.priority,
		Total: len(j.points), CachedAtSubmit: j.cached, State: JobRunning,
	}
	for _, p := range j.points {
		switch p.state {
		case pointDone:
			st.Done++
		case pointFailed, pointSkipped:
			st.Failed++
		case pointRunning:
			st.Running++
		default:
			st.Pending++
		}
	}
	if j.cancelled {
		st.State = JobCancelled
	} else if j.finished {
		st.State = JobDone
	}
	return st
}

// results assembles the canonical per-point records in submit order. The
// Perf of a technology point divides its baseline's ticks by its own, the
// exact computation of experiments.Runner.Sweep.
func (s *scheduler) results(j *job) ([]PointResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !j.finished {
		return nil, false
	}
	out := make([]PointResult, len(j.specs))
	for i, spec := range j.specs {
		p := j.points[spec.Fingerprint()]
		res := PointResult{Spec: spec}
		switch {
		case p.state != pointDone:
			res.Err = pointErrString(p)
		case spec.IsIdeal():
			res.Ticks, res.Perf = p.ticks, 1
		default:
			res.Ticks = p.ticks
			base := j.points[spec.Baseline().Fingerprint()]
			if base.state != pointDone {
				res.Ticks = 0
				res.Err = fmt.Sprintf("ideal baseline for %v: %s", spec, pointErrString(base))
			} else {
				res.Perf = float64(base.ticks) / float64(p.ticks)
			}
		}
		out[i] = res
	}
	return out, true
}

func pointErrString(p *point) string {
	if p.err != nil {
		return p.err.Error()
	}
	return "sweepd: point not run"
}

// serverCounts snapshots the queue-level numbers for the status endpoint.
func (s *scheduler) serverCounts() (jobs, active, pending, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs = len(s.jobs)
	for _, j := range s.jobs {
		if !j.finished {
			active++
		}
	}
	return jobs, active, s.pending.Len(), s.running
}

// close stops the intake (submit errors) and wakes every blocked worker so
// they drain the remaining queue and exit.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *scheduler) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// runPoint executes one point with the same panic recovery as the in-process
// runner: a diverging simulation fails its point, not the server.
func runPoint(ctx context.Context, run func(context.Context, experiments.RunSpec) (sim.Tick, error),
	spec experiments.RunSpec) (ticks sim.Tick, err error) {
	defer func() {
		if p := recover(); p != nil {
			ticks, err = 0, fmt.Errorf("sweepd: %v panicked: %v\n%s", spec, p, debug.Stack())
		}
	}()
	return run(ctx, spec)
}
