package cache

import "gem5rtl/internal/obs"

// AttachTracer wires the Cache debug flag. The logger is nil when the flag
// is off, so every trace site below costs one nil check.
func (c *Cache) AttachTracer(t *obs.Tracer) {
	c.trace = t.Logger("Cache", c.cfg.Name)
}
