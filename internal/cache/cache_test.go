package cache

import (
	"bytes"
	"testing"
	"testing/quick"

	"gem5rtl/internal/mem"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// harness: driver -> cache -> ideal memory.
type harness struct {
	q     *sim.EventQueue
	c     *Cache
	memry *mem.IdealMemory
	store *mem.Storage

	p       *port.RequestPort
	resps   []*port.Packet
	pending []*port.Packet
	stalled bool
}

func newHarness(t testing.TB, cfg Config) *harness {
	t.Helper()
	h := &harness{q: sim.NewEventQueue()}
	h.c = New(cfg, h.q)
	h.store = mem.NewStorage()
	h.memry = mem.NewIdealMemory("mem", h.q, h.store, 50*sim.Nanosecond)
	port.Bind(h.c.MemPort(), h.memry.Port())
	h.p = port.NewRequestPort("drv", h)
	port.Bind(h.p, h.c.CPUPort())
	return h
}

func (h *harness) RecvTimingResp(pkt *port.Packet) bool {
	h.resps = append(h.resps, pkt)
	return true
}

func (h *harness) RecvReqRetry() {
	h.stalled = false
	h.pump()
}

func (h *harness) send(pkt *port.Packet) {
	h.pending = append(h.pending, pkt)
	h.pump()
}

func (h *harness) pump() {
	for len(h.pending) > 0 && !h.stalled {
		if !h.p.SendTimingReq(h.pending[0]) {
			h.stalled = true
			return
		}
		h.pending = h.pending[1:]
	}
}

func l1Config() Config {
	return Config{Name: "l1d", SizeBytes: 64 * 1024, Assoc: 4,
		Latency: 1 * sim.Nanosecond, MSHRs: 24}
}

func TestMissThenHit(t *testing.T) {
	h := newHarness(t, l1Config())
	h.store.Write(0x1000, []byte{0xAA, 0xBB, 0xCC, 0xDD})

	h.send(port.NewReadPacket(0x1000, 4))
	h.q.Run()
	if len(h.resps) != 1 || !bytes.Equal(h.resps[0].Data, []byte{0xAA, 0xBB, 0xCC, 0xDD}) {
		t.Fatalf("miss read failed: %+v", h.resps)
	}
	missTime := h.q.Now()

	start := h.q.Now()
	h.send(port.NewReadPacket(0x1008, 8))
	h.q.Run()
	hitLat := h.q.Now() - start
	if st := h.c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if hitLat >= missTime {
		t.Fatalf("hit latency %d not lower than miss %d", hitLat, missTime)
	}
}

func TestWriteReadBack(t *testing.T) {
	h := newHarness(t, l1Config())
	h.send(port.NewWritePacket(0x2000, []byte{1, 2, 3, 4}))
	h.q.Run()
	h.send(port.NewReadPacket(0x2000, 4))
	h.q.Run()
	last := h.resps[len(h.resps)-1]
	if !bytes.Equal(last.Data, []byte{1, 2, 3, 4}) {
		t.Fatalf("read back %v", last.Data)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := l1Config()
	cfg.SizeBytes = 4 * 1024 // 64 blocks, 4-way, 16 sets
	h := newHarness(t, cfg)
	// Write block 0, then evict it by filling its set with conflicting blocks.
	h.send(port.NewWritePacket(0x0, []byte{0xEE}))
	h.q.Run()
	setStride := uint64(cfg.SizeBytes / cfg.Assoc) // 1 KiB
	for i := 1; i <= cfg.Assoc; i++ {
		h.send(port.NewReadPacket(uint64(i)*setStride, 8))
		h.q.Run()
	}
	st := h.c.Stats()
	if st.Writebacks == 0 {
		t.Fatal("no writeback on dirty eviction")
	}
	// Memory must now hold the dirty data.
	got := make([]byte, 1)
	h.store.Read(0, got)
	if got[0] != 0xEE {
		t.Fatalf("memory has %#x after writeback", got[0])
	}
	// Re-read block 0: must miss and return the written value.
	h.send(port.NewReadPacket(0x0, 1))
	h.q.Run()
	last := h.resps[len(h.resps)-1]
	if last.Data[0] != 0xEE {
		t.Fatalf("re-read %#x", last.Data[0])
	}
}

func TestMSHRCoalescing(t *testing.T) {
	h := newHarness(t, l1Config())
	// Two reads to the same block before the fill returns: one miss, one fill.
	h.send(port.NewReadPacket(0x3000, 4))
	h.send(port.NewReadPacket(0x3008, 4))
	h.q.Run()
	st := h.c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (coalesced)", st.Misses)
	}
	if len(h.resps) != 2 {
		t.Fatalf("resps = %d", len(h.resps))
	}
}

func TestMSHRLimitBackPressure(t *testing.T) {
	cfg := l1Config()
	cfg.MSHRs = 2
	h := newHarness(t, cfg)
	for i := 0; i < 8; i++ {
		h.send(port.NewReadPacket(uint64(i)*64, 4))
	}
	if !h.stalled {
		t.Fatal("no back-pressure with 8 misses into 2 MSHRs")
	}
	h.q.Run()
	if len(h.resps) != 8 {
		t.Fatalf("resps = %d, want 8", len(h.resps))
	}
	if h.c.Stats().MSHRStalls == 0 {
		t.Fatal("MSHR stalls not counted")
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := l1Config()
	cfg.SizeBytes = 2 * 64 * 2 // 2 sets? keep: 4 blocks, 2-way, 2 sets
	cfg.Assoc = 2
	h := newHarness(t, cfg)
	setStride := uint64(cfg.SizeBytes / cfg.Assoc) // 128
	a, b, c := uint64(0), setStride, 2*setStride   // all map to set 0
	h.send(port.NewReadPacket(a, 4))
	h.q.Run()
	h.send(port.NewReadPacket(b, 4))
	h.q.Run()
	h.send(port.NewReadPacket(a, 4)) // touch a: b becomes LRU
	h.q.Run()
	h.send(port.NewReadPacket(c, 4)) // evicts b
	h.q.Run()
	base := h.c.Stats()
	h.send(port.NewReadPacket(a, 4)) // must still hit
	h.q.Run()
	if h.c.Stats().Hits != base.Hits+1 {
		t.Fatal("LRU evicted the recently-used block")
	}
	h.send(port.NewReadPacket(b, 4)) // must miss
	h.q.Run()
	if h.c.Stats().Misses != base.Misses+1 {
		t.Fatal("expected miss on evicted block")
	}
}

func TestStridePrefetcher(t *testing.T) {
	cfg := l1Config()
	cfg.StridePrefetch = true
	h := newHarness(t, cfg)
	// Sequential block misses: the prefetcher should cover upcoming blocks.
	for i := 0; i < 16; i++ {
		h.send(port.NewReadPacket(uint64(i)*64, 4))
		h.q.Run()
	}
	st := h.c.Stats()
	if st.Prefetches == 0 {
		t.Fatal("stride prefetcher never fired")
	}
	if st.PrefHits == 0 {
		t.Fatal("no demand hits on prefetched lines")
	}
	if st.Misses >= 16 {
		t.Fatalf("prefetcher did not reduce misses: %d", st.Misses)
	}
}

func TestOnMissCallback(t *testing.T) {
	h := newHarness(t, l1Config())
	misses := 0
	h.c.OnMiss = func() { misses++ }
	h.send(port.NewReadPacket(0x100, 4))
	h.q.Run()
	h.send(port.NewReadPacket(0x100, 4))
	h.q.Run()
	if misses != 1 {
		t.Fatalf("OnMiss fired %d times, want 1", misses)
	}
}

func TestFunctionalThroughCache(t *testing.T) {
	h := newHarness(t, l1Config())
	// Functional write lands in memory even with no traffic.
	w := port.NewWritePacket(0x5000, []byte{7, 8, 9})
	h.p.SendFunctional(w)
	got := make([]byte, 3)
	h.store.Read(0x5000, got)
	if !bytes.Equal(got, []byte{7, 8, 9}) {
		t.Fatal("functional write did not reach memory")
	}
	r := port.NewReadPacket(0x5000, 3)
	h.p.SendFunctional(r)
	if !bytes.Equal(r.Data, []byte{7, 8, 9}) {
		t.Fatal("functional read wrong")
	}
}

// Property: any sequence of writes then reads returns the written data
// through the cache (data integrity across evictions).
func TestQuickDataIntegrity(t *testing.T) {
	cfg := l1Config()
	cfg.SizeBytes = 1024 // tiny: force evictions
	cfg.Assoc = 2
	h := newHarness(t, cfg)
	written := map[uint64]byte{}
	f := func(addrs []uint16) bool {
		for _, a16 := range addrs {
			addr := uint64(a16)
			val := byte(a16 >> 3)
			h.send(port.NewWritePacket(addr, []byte{val}))
			written[addr] = val
		}
		h.q.Run()
		for addr, val := range written {
			h.resps = nil
			h.send(port.NewReadPacket(addr, 1))
			h.q.Run()
			if len(h.resps) != 1 || h.resps[0].Data[0] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoLevelHierarchy(t *testing.T) {
	q := sim.NewEventQueue()
	l1 := New(Config{Name: "l1", SizeBytes: 4096, Assoc: 4, Latency: sim.Nanosecond, MSHRs: 8}, q)
	l2 := New(Config{Name: "l2", SizeBytes: 64 * 1024, Assoc: 8, Latency: 4 * sim.Nanosecond, MSHRs: 16, StridePrefetch: true}, q)
	store := mem.NewStorage()
	m := mem.NewIdealMemory("mem", q, store, 80*sim.Nanosecond)
	port.Bind(l1.MemPort(), l2.CPUPort())
	port.Bind(l2.MemPort(), m.Port())
	h := &harness{q: q}
	h.p = port.NewRequestPort("drv", h)
	port.Bind(h.p, l1.CPUPort())

	store.Write(0x8000, []byte{0x11, 0x22})
	h.send(port.NewReadPacket(0x8000, 2))
	q.Run()
	if len(h.resps) != 1 || h.resps[0].Data[0] != 0x11 {
		t.Fatal("two-level read failed")
	}
	if l1.Stats().Misses != 1 || l2.Stats().Misses != 1 {
		t.Fatalf("l1 %+v l2 %+v", l1.Stats(), l2.Stats())
	}
	// L1 eviction pressure: re-reads served by L2.
	for i := 0; i < 128; i++ {
		h.send(port.NewReadPacket(uint64(i)*64, 4))
		q.Run()
	}
	h.resps = nil
	h.send(port.NewReadPacket(0x8000, 2))
	q.Run()
	if h.resps[0].Data[0] != 0x11 {
		t.Fatal("data lost across levels")
	}
}

func BenchmarkCacheHit(b *testing.B) {
	h := newHarness(b, l1Config())
	h.send(port.NewReadPacket(0x100, 8))
	h.q.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.send(port.NewReadPacket(0x100, 8))
		h.q.Run()
	}
}
