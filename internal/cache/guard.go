package cache

import (
	"fmt"
	"sort"
	"strings"
)

// The liveness-probe methods below implement guard.Probe (structurally; this
// package does not import guard): the watchdog waits on MSHR occupancy and
// queued packets, and dumps them when a simulation wedges.

// GuardName identifies the cache in watchdog diagnostics.
func (c *Cache) GuardName() string { return c.cfg.Name }

// InFlight reports outstanding misses plus queued packets.
func (c *Cache) InFlight() int {
	return len(c.mshrs) + c.respQ.Len() + c.reqQ.Len()
}

// GuardDetail renders MSHR blocks with their target packet IDs.
func (c *Cache) GuardDetail() string {
	blocks := make([]uint64, 0, len(c.mshrs))
	for b := range c.mshrs {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	const maxBlocks = 8
	var parts []string
	for i, b := range blocks {
		if i == maxBlocks {
			parts = append(parts, fmt.Sprintf("+%d more", len(blocks)-maxBlocks))
			break
		}
		m := c.mshrs[b]
		ids := make([]string, len(m.targets))
		for j, t := range m.targets {
			ids[j] = fmt.Sprintf("%d", t.ID)
		}
		parts = append(parts, fmt.Sprintf("mshr %#x pkts=[%s]", b, strings.Join(ids, " ")))
	}
	return fmt.Sprintf("respQ=%d reqQ=%d %s", c.respQ.Len(), c.reqQ.Len(), strings.Join(parts, " "))
}
