package cache

import (
	"testing"

	"gem5rtl/internal/mem"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// pooledDriver is a minimal cache master that recycles every response,
// mirroring how the CPU core uses the cache after the pooling overhaul.
type pooledDriver struct {
	pool port.PacketPool
	p    *port.RequestPort
	got  int
}

func (d *pooledDriver) RecvTimingResp(pkt *port.Packet) bool {
	d.got++
	pkt.Release()
	return true
}

func (d *pooledDriver) RecvReqRetry() {}

// TestCacheHitPathAllocs requires the steady-state read-hit round trip —
// pooled request in, cache lookup, pooled response out, release — to be
// allocation-free. A regression here means the hot lookup path started
// allocating again (packets, response-queue growth, or event churn).
func TestCacheHitPathAllocs(t *testing.T) {
	q := sim.NewEventQueue()
	c := New(l1Config(), q)
	store := mem.NewStorage()
	m := mem.NewIdealMemory("mem", q, store, 50*sim.Nanosecond)
	port.Bind(c.MemPort(), m.Port())
	d := &pooledDriver{}
	d.p = port.NewRequestPort("drv", d)
	port.Bind(d.p, c.CPUPort())

	hit := func() {
		pkt := d.pool.GetRead(0x100, 8)
		if !d.p.SendTimingReq(pkt) {
			t.Fatal("cache refused a request")
		}
		q.Run()
	}
	hit() // first access misses and warms the pool, MSHRs and line storage
	hit() // second access warms the hit path itself

	allocs := testing.AllocsPerRun(1000, hit)
	if allocs != 0 {
		t.Fatalf("cache hit path allocates %.1f objects/op, want 0", allocs)
	}
	if d.got < 2 {
		t.Fatal("no responses delivered")
	}
}

// TestCacheMissPathAllocs bounds the steady-state miss path (lookup, MSHR
// recycle, pooled fetch to memory, fill, victim writeback) — the dominant
// packet traffic of the DSE workloads. The bound is deliberately loose: it
// catches a return to per-miss packet/MSHR allocation (~10 objects in the
// pre-pooling kernel) without pinning incidental runtime behaviour.
func TestCacheMissPathAllocs(t *testing.T) {
	q := sim.NewEventQueue()
	cfg := l1Config()
	c := New(cfg, q)
	store := mem.NewStorage()
	m := mem.NewIdealMemory("mem", q, store, 50*sim.Nanosecond)
	port.Bind(c.MemPort(), m.Port())
	d := &pooledDriver{}
	d.p = port.NewRequestPort("drv", d)
	port.Bind(d.p, c.CPUPort())

	// Walk a strided footprint larger than the cache so every access past
	// the warm-up round misses and (after one full pass) evicts.
	stride := uint64(64)
	lines := uint64(2 * cfg.SizeBytes / 64)
	var i uint64
	miss := func() {
		pkt := d.pool.Get(port.WriteReq, (i%lines)*stride, 8)
		pkt.AllocateData()
		i++
		if !d.p.SendTimingReq(pkt) {
			t.Fatal("cache refused a request")
		}
		q.Run()
	}
	for j := uint64(0); j < 2*lines; j++ {
		miss() // two full passes: populate, then evict-with-writeback
	}

	allocs := testing.AllocsPerRun(200, miss)
	if allocs > 2 {
		t.Fatalf("cache miss path allocates %.1f objects/op, want <= 2", allocs)
	}
}
