// Package cache implements the non-blocking, write-back, set-associative
// caches of the simulated SoC (Table 1): private L1I/L1D and L2 per core and
// a shared last-level cache. Caches track real data (so the guest ISA and
// NVDLA traces read what they wrote), use LRU replacement, limit outstanding
// misses with MSHRs (propagating back-pressure through the port retry
// protocol), emit writebacks for dirty victims, and optionally run a stride
// prefetcher (the L2 configuration in the paper).
package cache

import (
	"fmt"

	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

// Config parameterises a cache.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
	BlockSize int
	// Latency is the hit/lookup latency in ticks.
	Latency sim.Tick
	// MSHRs bounds outstanding misses (Table 1: 8-32 depending on level).
	MSHRs int
	// WriteBuffers bounds outstanding writebacks (0 = same as MSHRs).
	WriteBuffers int
	// StridePrefetch enables the degree-1 stride prefetcher (L2 in Table 1).
	StridePrefetch bool
}

// Stats aggregates cache activity.
type Stats struct {
	Hits        uint64
	Misses      uint64
	ReadMisses  uint64
	WriteMisses uint64
	Evictions   uint64
	Writebacks  uint64
	Prefetches  uint64
	PrefHits    uint64 // demand hits on prefetched lines
	MSHRStalls  uint64
}

// MissRate returns misses / accesses.
func (s *Stats) MissRate() float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Misses) / float64(tot)
}

type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool
	lastUse    uint64
	data       []byte
}

type mshr struct {
	blockAddr uint64
	targets   []*port.Packet
	isPref    bool
}

// Cache is one cache level with a CPU-side response port and a memory-side
// request port.
type Cache struct {
	cfg Config
	q   *sim.EventQueue
	// sets holds one way-array per set, materialised on the set's first
	// victim selection; setSlab lazily backs each touched set's line data
	// with a single assoc × block-size allocation. A nil set reads as
	// all-invalid, so large mostly-idle caches (the 16 MiB LLC in short
	// DSE points) cost memory proportional to their touched footprint,
	// not their geometry.
	sets    [][]line
	setSlab [][]byte
	nsets   int
	useCt   uint64

	cpuPort *port.ResponsePort
	memPort *port.RequestPort
	respQ   *port.RespQueue
	reqQ    *port.ReqQueue

	mshrs map[uint64]*mshr
	// mshrFree recycles retired MSHRs (and their target slices); pool
	// recycles the block fetches and writebacks this cache originates.
	mshrFree []*mshr
	pool     port.PacketPool

	// Stride prefetcher state.
	lastMiss   uint64
	lastStride int64

	// OnMiss fires on every demand miss (the PMU's L1D-miss event tap).
	OnMiss func()

	// trace is the Cache debug-flag logger (nil = off; see AttachTracer).
	trace *obs.Logger

	stats Stats
}

// New builds a cache on the given event queue.
func New(cfg Config, q *sim.EventQueue) *Cache {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 64
	}
	if cfg.WriteBuffers == 0 {
		cfg.WriteBuffers = cfg.MSHRs
	}
	nsets := cfg.SizeBytes / cfg.BlockSize / cfg.Assoc
	if nsets < 1 {
		panic(fmt.Sprintf("cache %s: bad geometry", cfg.Name))
	}
	c := &Cache{cfg: cfg, q: q, nsets: nsets, mshrs: map[uint64]*mshr{}}
	// Only the set-pointer tables are eager; way arrays and data slabs
	// materialise per touched set in victim(). Cache construction used to
	// dominate the allocation profile of cold DSE sweeps.
	c.sets = make([][]line, nsets)
	c.setSlab = make([][]byte, nsets)
	c.cpuPort = port.NewResponsePort(cfg.Name+".cpu_side", (*cacheCPUSide)(c))
	c.memPort = port.NewRequestPort(cfg.Name+".mem_side", (*cacheMemSide)(c))
	c.respQ = port.NewRespQueue(cfg.Name+".resp", q, c.cpuPort)
	c.respQ.SetOwner(q.Owner(cfg.Name, "resp-drain"))
	c.reqQ = port.NewReqQueue(cfg.Name+".req", q, c.memPort)
	c.reqQ.SetOwner(q.Owner(cfg.Name, "req-drain"))
	return c
}

// CPUPort returns the upstream-facing response port.
func (c *Cache) CPUPort() *port.ResponsePort { return c.cpuPort }

// MemPort returns the downstream-facing request port.
func (c *Cache) MemPort() *port.RequestPort { return c.memPort }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	block := addr / uint64(c.cfg.BlockSize)
	return int(block % uint64(c.nsets)), block / uint64(c.nsets)
}

func (c *Cache) lookup(addr uint64) *line {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			return ln
		}
	}
	return nil
}

// cacheCPUSide implements port.Responder on the cache's CPU side.
type cacheCPUSide Cache

func (cs *cacheCPUSide) RecvTimingReq(pkt *port.Packet) bool {
	return (*Cache)(cs).handleRequest(pkt)
}

func (cs *cacheCPUSide) RecvRespRetry() { (*Cache)(cs).respQ.RecvRespRetry() }

// FunctionalAccess lets upstream agents load images through the hierarchy.
func (cs *cacheCPUSide) FunctionalAccess(pkt *port.Packet) {
	(*Cache)(cs).FunctionalAccess(pkt)
}

// cacheMemSide implements port.Requestor on the cache's memory side.
type cacheMemSide Cache

func (ms *cacheMemSide) RecvTimingResp(pkt *port.Packet) bool {
	return (*Cache)(ms).handleFill(pkt)
}

func (ms *cacheMemSide) RecvReqRetry() { (*Cache)(ms).reqQ.RecvReqRetry() }

// handleRequest processes an upstream access.
func (c *Cache) handleRequest(pkt *port.Packet) bool {
	blockAddr := port.BlockAddr(pkt.Addr, c.cfg.BlockSize)
	// Coalesce with an outstanding miss to the same block.
	if m, ok := c.mshrs[blockAddr]; ok {
		if c.trace.On() {
			c.trace.Logf("%s addr=%#x coalesced into MSHR %#x (%d targets)",
				pkt.Cmd, pkt.Addr, blockAddr, len(m.targets)+1)
		}
		m.targets = append(m.targets, pkt)
		m.isPref = false
		return true
	}
	if ln := c.lookup(pkt.Addr); ln != nil {
		if c.trace.On() {
			c.trace.Logf("%s addr=%#x hit", pkt.Cmd, pkt.Addr)
		}
		c.stats.Hits++
		if ln.prefetched {
			c.stats.PrefHits++
			ln.prefetched = false
		}
		c.useCt++
		ln.lastUse = c.useCt
		c.serve(pkt, ln, c.q.Now()+c.cfg.Latency)
		return true
	}
	// Miss: need an MSHR.
	if len(c.mshrs) >= c.cfg.MSHRs {
		if c.trace.On() {
			c.trace.Logf("%s addr=%#x stalled: all %d MSHRs busy", pkt.Cmd, pkt.Addr, c.cfg.MSHRs)
		}
		c.stats.MSHRStalls++
		return false
	}
	if c.trace.On() {
		c.trace.Logf("%s addr=%#x miss, MSHR %#x allocated", pkt.Cmd, pkt.Addr, blockAddr)
	}
	c.stats.Misses++
	if pkt.Cmd.IsWrite() {
		c.stats.WriteMisses++
	} else {
		c.stats.ReadMisses++
	}
	if c.OnMiss != nil {
		c.OnMiss()
	}
	c.allocateMiss(blockAddr, pkt, false)
	c.maybePrefetch(blockAddr)
	return true
}

// allocateMiss registers an MSHR and issues the block fetch downstream.
func (c *Cache) allocateMiss(blockAddr uint64, pkt *port.Packet, isPref bool) {
	var m *mshr
	if n := len(c.mshrFree); n > 0 {
		m = c.mshrFree[n-1]
		c.mshrFree[n-1] = nil
		c.mshrFree = c.mshrFree[:n-1]
		m.blockAddr = blockAddr
		m.isPref = isPref
	} else {
		m = &mshr{blockAddr: blockAddr, isPref: isPref}
	}
	if pkt != nil {
		m.targets = append(m.targets, pkt)
	}
	c.mshrs[blockAddr] = m
	cmd := port.ReadReq
	if isPref {
		cmd = port.PrefetchReq
	}
	fetch := c.pool.Get(cmd, blockAddr, c.cfg.BlockSize)
	fetch.ReqTick = c.q.Now()
	c.reqQ.Schedule(fetch, c.q.Now()+c.cfg.Latency)
}

// maybePrefetch runs the stride detector on the demand-miss stream.
func (c *Cache) maybePrefetch(blockAddr uint64) {
	if !c.cfg.StridePrefetch {
		return
	}
	stride := int64(blockAddr) - int64(c.lastMiss)
	if stride != 0 && stride == c.lastStride {
		next := uint64(int64(blockAddr) + stride)
		if _, pending := c.mshrs[next]; !pending && c.lookup(next) == nil &&
			len(c.mshrs) < c.cfg.MSHRs {
			c.stats.Prefetches++
			c.allocateMiss(port.BlockAddr(next, c.cfg.BlockSize), nil, true)
		}
	}
	c.lastStride = stride
	c.lastMiss = blockAddr
}

// serve completes an access against a resident line.
func (c *Cache) serve(pkt *port.Packet, ln *line, readyAt sim.Tick) {
	off := int(pkt.Addr) & (c.cfg.BlockSize - 1)
	if pkt.Cmd.IsWrite() {
		copy(ln.data[off:off+pkt.Size], pkt.Data)
		ln.dirty = true
		if !pkt.NeedsResponse() {
			// Terminus of a writeback: this cache is the packet's final owner.
			pkt.Release()
			return
		}
		pkt.MakeResponse()
	} else {
		pkt.MakeResponse()
		pkt.AllocateData()
		copy(pkt.Data, ln.data[off:off+pkt.Size])
	}
	c.respQ.Schedule(pkt, readyAt)
}

// handleFill processes a block arriving from downstream.
func (c *Cache) handleFill(pkt *port.Packet) bool {
	if pkt.Cmd == port.WriteResp {
		// Ack for a writeback-as-write; nothing to do.
		return true
	}
	blockAddr := pkt.Addr
	m, ok := c.mshrs[blockAddr]
	if !ok {
		panic(fmt.Sprintf("cache %s: fill for unknown block %#x", c.cfg.Name, blockAddr))
	}
	delete(c.mshrs, blockAddr)
	if c.trace.On() {
		c.trace.Logf("fill addr=%#x, %d targets", blockAddr, len(m.targets))
	}
	ln := c.victim(blockAddr)
	ln.data = append(ln.data[:0], pkt.Data...)
	_, ln.tag = c.index(blockAddr)
	ln.valid = true
	ln.dirty = false
	ln.prefetched = m.isPref && len(m.targets) == 0
	c.useCt++
	ln.lastUse = c.useCt
	readyAt := c.q.Now() + c.cfg.Latency
	for _, t := range m.targets {
		c.serve(t, ln, readyAt)
	}
	// The fill is this cache's own fetch packet coming back: the payload is
	// copied into the line above, so the packet can be recycled.
	pkt.Release()
	for i := range m.targets {
		m.targets[i] = nil
	}
	m.targets = m.targets[:0]
	c.mshrFree = append(c.mshrFree, m)
	// MSHR freed: admit a deferred request and wake refused senders.
	c.cpuPort.SendRetryReq()
	return true
}

// victim selects (and if necessary evicts) a line for blockAddr's set.
func (c *Cache) victim(blockAddr uint64) *line {
	set, _ := c.index(blockAddr)
	ways := c.sets[set]
	if ways == nil {
		// First touch of this set: materialise its ways.
		ways = make([]line, c.cfg.Assoc)
		c.sets[set] = ways
	}
	vi := -1
	for i := range ways {
		ln := &ways[i]
		if !ln.valid {
			vi = i
			break
		}
		if vi < 0 || ln.lastUse < ways[vi].lastUse {
			vi = i
		}
	}
	v := &ways[vi]
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			_, tag := c.index(blockAddr)
			_ = tag
			victimAddr := c.addrOf(set, v.tag)
			if c.trace.On() {
				c.trace.Logf("writeback victim addr=%#x for fill %#x", victimAddr, blockAddr)
			}
			wb := c.pool.Get(port.WritebackDirty, victimAddr, c.cfg.BlockSize)
			wb.Data = append(wb.Data[:0], v.data...)
			c.reqQ.Schedule(wb, c.q.Now())
		}
	}
	if v.data == nil {
		// First use: carve this line's fixed region out of the set's slab
		// (allocated on the set's first touch, zeroed like a fresh make).
		if c.setSlab[set] == nil {
			c.setSlab[set] = make([]byte, c.cfg.Assoc*c.cfg.BlockSize)
		}
		idx := vi * c.cfg.BlockSize
		v.data = c.setSlab[set][idx : idx+c.cfg.BlockSize : idx+c.cfg.BlockSize]
	}
	return v
}

// addrOf reconstructs a block's base address from set and tag.
func (c *Cache) addrOf(set int, tag uint64) uint64 {
	return (tag*uint64(c.nsets) + uint64(set)) * uint64(c.cfg.BlockSize)
}

// FunctionalAccess implements port.Functional: it updates/reads resident
// lines and forwards to the next level so the whole hierarchy stays
// coherent for program loading.
func (c *Cache) FunctionalAccess(pkt *port.Packet) {
	if ln := c.lookup(pkt.Addr); ln != nil {
		off := int(pkt.Addr) & (c.cfg.BlockSize - 1)
		if pkt.Cmd.IsWrite() {
			copy(ln.data[off:off+pkt.Size], pkt.Data)
			ln.dirty = true
			// Also propagate downstream so lower levels/memory see it.
			c.memPort.SendFunctional(pkt)
			return
		}
		pkt.AllocateData()
		copy(pkt.Data, ln.data[off:off+pkt.Size])
		return
	}
	c.memPort.SendFunctional(pkt)
}
