package cache

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
)

func testCacheCfg() Config {
	return Config{Name: "l1", SizeBytes: 4 << 10, Assoc: 2, Latency: 1000, MSHRs: 4, StridePrefetch: true}
}

// buildTestCache wires a cache between a stub CPU and an ideal responder so
// real traffic can populate its state.
func buildTestCache(q *sim.EventQueue) *Cache {
	c := New(testCacheCfg(), q)
	cpuSide := port.NewRequestPort("cpu", acceptAll{})
	port.Bind(cpuSide, c.CPUPort())
	memSide := port.NewResponsePort("mem", acceptAll{})
	port.Bind(c.MemPort(), memSide)
	return c
}

type acceptAll struct{}

func (acceptAll) RecvTimingResp(*port.Packet) bool { return true }
func (acceptAll) RecvReqRetry()                    {}
func (acceptAll) RecvTimingReq(*port.Packet) bool  { return true }
func (acceptAll) RecvRespRetry()                   {}

func saveCache(t *testing.T, c *Cache) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := ckpt.NewWriter(&buf)
	if err := c.SaveState(w); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCacheRoundTrip fills a cache with resident lines, outstanding MSHRs
// (with coalesced targets) and prefetcher state, then round-trips it.
func TestCacheRoundTrip(t *testing.T) {
	q := sim.NewEventQueue()
	c := buildTestCache(q)

	// Demand misses with strides to exercise MSHRs and the prefetcher.
	for i := 0; i < 6; i++ {
		pkt := port.NewReadPacket(uint64(i)*64, 8)
		pkt.PushSenderState(uint64(i))
		c.handleRequest(pkt)
	}
	// Coalesce one more target onto an outstanding miss.
	extra := port.NewReadPacket(0x40, 4)
	extra.PushSenderState(uint64(99))
	c.handleRequest(extra)
	// Fill two blocks so some lines are resident (and one dirtied).
	fill := port.NewPacket(port.ReadResp, 0, 64)
	fill.Data = make([]byte, 64)
	fill.Data[3] = 0xaa
	c.handleFill(fill)
	wr := port.NewWritePacket(0x8, []byte{1, 2, 3, 4})
	wr.PushSenderState(uint64(7))
	c.handleRequest(wr)

	blob := saveCache(t, c)

	q2 := sim.NewEventQueue()
	c2 := buildTestCache(q2)
	if err := c2.RestoreState(ckpt.NewReader(bytes.NewReader(blob))); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := saveCache(t, c2); !bytes.Equal(got, blob) {
		t.Error("re-saved state differs from original checkpoint")
	}
	if ln := c2.lookup(0x0); ln == nil || !ln.dirty || ln.data[3] != 0xaa || ln.data[8] != 1 {
		t.Error("restored line contents wrong")
	}
	if len(c2.mshrs) != len(c.mshrs) {
		t.Errorf("restored MSHRs = %d, want %d", len(c2.mshrs), len(c.mshrs))
	}
	if c2.stats != c.stats {
		t.Errorf("stats = %+v, want %+v", c2.stats, c.stats)
	}
}

// TestCacheGeometryMismatch ensures a checkpoint refuses to load into a
// cache of different shape.
func TestCacheGeometryMismatch(t *testing.T) {
	q := sim.NewEventQueue()
	c := buildTestCache(q)
	blob := saveCache(t, c)

	cfg := testCacheCfg()
	cfg.Assoc = 4
	other := New(cfg, sim.NewEventQueue())
	if err := other.RestoreState(ckpt.NewReader(bytes.NewReader(blob))); err == nil {
		t.Fatal("geometry mismatch not detected")
	}
}
