package cache

import (
	"fmt"
	"sort"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/port"
)

// SaveState captures the full cache state: every line (tag, flags, LRU
// stamp, data), the MSHR file with coalesced target packets, the stride
// prefetcher, statistics, the CPU-side retry flags and both port queues.
// MSHRs live in a map that is only ever key-addressed during simulation, so
// serialising it sorted by block address keeps the stream deterministic
// without constraining the hot path.
func (c *Cache) SaveState(w *ckpt.Writer) error {
	w.Section("cache." + c.cfg.Name)
	w.Int(c.nsets)
	w.Int(c.cfg.Assoc)
	// Lines are stored sparsely: only valid ones, keyed by (set, way). An
	// invalid line's tag/lastUse/data are never read (victim selection takes
	// the first invalid way), and a restore targets a freshly built cache
	// whose lines are all invalid already — so skipping them keeps snapshots
	// proportional to the working set, not the cache geometry.
	valid := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid {
				valid++
			}
		}
	}
	w.Int(valid)
	for s := range c.sets {
		for i := range c.sets[s] {
			ln := &c.sets[s][i]
			if !ln.valid {
				continue
			}
			w.Int(s)
			w.Int(i)
			w.U64(ln.tag)
			w.Bool(ln.dirty)
			w.Bool(ln.prefetched)
			w.U64(ln.lastUse)
			w.Bytes(ln.data)
		}
	}
	w.U64(c.useCt)
	addrs := make([]uint64, 0, len(c.mshrs))
	for a := range c.mshrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.Int(len(addrs))
	for _, a := range addrs {
		m := c.mshrs[a]
		w.U64(m.blockAddr)
		w.Bool(m.isPref)
		w.Int(len(m.targets))
		for _, t := range m.targets {
			port.SavePacket(w, t)
		}
	}
	w.U64(c.lastMiss)
	w.I64(c.lastStride)
	saveCacheStats(w, &c.stats)
	if err := c.cpuPort.SaveState(w); err != nil {
		return err
	}
	if err := c.respQ.SaveState(w); err != nil {
		return err
	}
	return c.reqQ.SaveState(w)
}

// RestoreState reinstates the state captured by SaveState into a freshly
// built cache of identical geometry. The OnMiss hook is host wiring and is
// re-registered by the builder, not the checkpoint.
func (c *Cache) RestoreState(r *ckpt.Reader) error {
	r.Section("cache." + c.cfg.Name)
	if n, a := r.Int(), r.Int(); r.Err() == nil && (n != c.nsets || a != c.cfg.Assoc) {
		return fmt.Errorf("cache %s: checkpoint geometry %dx%d does not match %dx%d",
			c.cfg.Name, n, a, c.nsets, c.cfg.Assoc)
	}
	nv := r.Len()
	for k := 0; k < nv && r.Err() == nil; k++ {
		s, i := r.Int(), r.Int()
		if s < 0 || s >= c.nsets || i < 0 || i >= c.cfg.Assoc {
			return fmt.Errorf("cache %s: checkpoint line (%d,%d) outside %dx%d geometry",
				c.cfg.Name, s, i, c.nsets, c.cfg.Assoc)
		}
		if c.sets[s] == nil {
			c.sets[s] = make([]line, c.cfg.Assoc)
		}
		ln := &c.sets[s][i]
		ln.valid = true
		ln.tag = r.U64()
		ln.dirty = r.Bool()
		ln.prefetched = r.Bool()
		ln.lastUse = r.U64()
		ln.data = r.Bytes()
	}
	c.useCt = r.U64()
	n := r.Len()
	c.mshrs = make(map[uint64]*mshr, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		m := &mshr{blockAddr: r.U64(), isPref: r.Bool()}
		nt := r.Len()
		for j := 0; j < nt && r.Err() == nil; j++ {
			m.targets = append(m.targets, port.LoadPacket(r))
		}
		c.mshrs[m.blockAddr] = m
	}
	c.lastMiss = r.U64()
	c.lastStride = r.I64()
	restoreCacheStats(r, &c.stats)
	if err := c.cpuPort.RestoreState(r); err != nil {
		return err
	}
	if err := c.respQ.RestoreState(r); err != nil {
		return err
	}
	return c.reqQ.RestoreState(r)
}

func saveCacheStats(w *ckpt.Writer, s *Stats) {
	w.U64(s.Hits)
	w.U64(s.Misses)
	w.U64(s.ReadMisses)
	w.U64(s.WriteMisses)
	w.U64(s.Evictions)
	w.U64(s.Writebacks)
	w.U64(s.Prefetches)
	w.U64(s.PrefHits)
	w.U64(s.MSHRStalls)
}

func restoreCacheStats(r *ckpt.Reader, s *Stats) {
	s.Hits = r.U64()
	s.Misses = r.U64()
	s.ReadMisses = r.U64()
	s.WriteMisses = r.U64()
	s.Evictions = r.U64()
	s.Writebacks = r.U64()
	s.Prefetches = r.U64()
	s.PrefHits = r.U64()
	s.MSHRStalls = r.U64()
}
