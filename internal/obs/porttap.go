package obs

import (
	"gem5rtl/internal/port"
)

// traceTap is a port.LinkTap that logs every timing delivery on one link
// under the Port debug flag, gem5 PacketTracer style.
type traceTap struct {
	l *Logger
}

// PortTap returns a LinkTap that traces the named link's traffic, or nil
// when the Port flag is disabled. Callers must skip Interpose on nil — a
// disabled link carries no tap at all, preserving zero cost when off.
func (t *Tracer) PortTap(link string) port.LinkTap {
	l := t.Logger("Port", link)
	if l == nil {
		return nil
	}
	return &traceTap{l: l}
}

func (t *traceTap) TapReq(pkt *port.Packet) port.TapAction {
	if t.l.On() {
		t.l.Logf("req %s addr=%#x size=%d id=%d", pkt.Cmd, pkt.Addr, pkt.Size, pkt.ID)
	}
	return port.TapPass
}

func (t *traceTap) TapResp(pkt *port.Packet) port.TapAction {
	if t.l.On() {
		t.l.Logf("resp %s addr=%#x size=%d id=%d", pkt.Cmd, pkt.Addr, pkt.Size, pkt.ID)
	}
	return port.TapPass
}
