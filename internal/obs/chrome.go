package obs

import (
	"encoding/json"
	"io"

	"gem5rtl/internal/sim"
)

// DefaultMaxSpans caps the number of spans a ChromeTrace retains; beyond it
// spans are counted but dropped, bounding memory on long runs.
const DefaultMaxSpans = 1 << 20

// ChromeTrace collects packet spans and emits them as Chrome trace-event
// JSON ("Trace Event Format", ph="X" complete events), viewable in
// chrome://tracing or Perfetto. Each tap becomes one named track (a tid in
// a single process); ts/dur are microseconds, so one tick (1 ps) maps to
// 1e-6 us.
type ChromeTrace struct {
	spans []chromeSpan
	tids  map[string]int
	order []string
	// MaxSpans bounds retained spans (0 = DefaultMaxSpans).
	MaxSpans int
	// Dropped counts spans discarded after MaxSpans was reached.
	Dropped uint64
}

type chromeSpan struct {
	track string
	name  string
	addr  uint64
	start sim.Tick
	end   sim.Tick
}

// NewChromeTrace creates an empty trace collector.
func NewChromeTrace() *ChromeTrace {
	return &ChromeTrace{tids: map[string]int{}}
}

// Span records one completed interval on a track. Tracks are assigned tids
// in first-seen order (deterministic under a deterministic simulation).
func (c *ChromeTrace) Span(track, name string, addr uint64, start, end sim.Tick) {
	max := c.MaxSpans
	if max <= 0 {
		max = DefaultMaxSpans
	}
	if len(c.spans) >= max {
		c.Dropped++
		return
	}
	if _, ok := c.tids[track]; !ok {
		c.tids[track] = len(c.order) + 1
		c.order = append(c.order, track)
	}
	c.spans = append(c.spans, chromeSpan{track: track, name: name, addr: addr, start: start, end: end})
}

// Spans returns the number of retained spans.
func (c *ChromeTrace) Spans() int { return len(c.spans) }

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteJSON emits the collected spans as a Chrome trace-event JSON object.
func (c *ChromeTrace) WriteJSON(w io.Writer) error {
	const pid = 1
	events := make([]chromeEvent, 0, len(c.spans)+len(c.order))
	// Thread-name metadata first: one track per tap, in first-seen order.
	for _, track := range c.order {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: c.tids[track],
			Args: map[string]any{"name": track},
		})
	}
	for _, s := range c.spans {
		ts := float64(s.start) / 1e6 // ps -> us
		dur := float64(s.end-s.start) / 1e6
		events = append(events, chromeEvent{
			Name: s.name, Ph: "X", Ts: ts, Dur: &dur, Pid: pid, Tid: c.tids[s.track],
			Args: map[string]any{"addr": s.addr},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ns"})
}
