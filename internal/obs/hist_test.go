package obs

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1106 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if got := h.Mean(); got < 184 || got > 185 {
		t.Fatalf("mean = %v", got)
	}
	// Bucket i holds [2^(i-1), 2^i): 0 -> bucket 0, 1 -> 1, 2,3 -> 2,
	// 100 -> 7, 1000 -> 10.
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 7: 1, 10: 1} {
		if h.Bucket(i) != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, h.Bucket(i), want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(10) // bucket 4, upper bound 15
	}
	h.Observe(1 << 20) // one outlier
	if p50 := h.Percentile(50); p50 != 15 {
		t.Fatalf("p50 = %d, want 15", p50)
	}
	p999 := h.Percentile(99.9)
	if p999 < 1<<20 {
		t.Fatalf("p99.9 = %d, want >= outlier", p999)
	}
}

func TestHistogramMergeEqualsCombinedObservation(t *testing.T) {
	var a, b, all Histogram
	for i := uint64(0); i < 100; i++ {
		v := i * i % 977
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	a.Merge(&b)
	if a != all {
		t.Fatalf("merged %+v != combined %+v", a, all)
	}
	var empty Histogram
	a.Merge(&empty) // merging an empty histogram must not disturb min
	if a != all {
		t.Fatal("merging empty changed the histogram")
	}
}

// TestHistogramCheckpointRoundTrip is satellite 3's first property: the
// histogram survives a save/restore bit-identically — restoring and saving
// again yields the exact same byte stream.
func TestHistogramCheckpointRoundTrip(t *testing.T) {
	var h Histogram
	for i := uint64(1); i < 1000; i += 7 {
		h.Observe(i * 13)
	}
	var first bytes.Buffer
	w := ckpt.NewWriter(&first)
	if err := h.SaveState(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var back Histogram
	if err := back.RestoreState(ckpt.NewReader(bytes.NewReader(first.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("restored %+v != saved %+v", back, h)
	}

	var second bytes.Buffer
	w2 := ckpt.NewWriter(&second)
	if err := back.SaveState(w2); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("checkpoint round-trip is not bit-identical")
	}
}
