package obs

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1106 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if got := h.Mean(); got < 184 || got > 185 {
		t.Fatalf("mean = %v", got)
	}
	// Bucket i holds [2^(i-1), 2^i): 0 -> bucket 0, 1 -> 1, 2,3 -> 2,
	// 100 -> 7, 1000 -> 10.
	for i, want := range map[int]uint64{0: 1, 1: 1, 2: 2, 7: 1, 10: 1} {
		if h.Bucket(i) != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, h.Bucket(i), want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(10) // bucket 4, upper bound 15
	}
	h.Observe(1 << 20) // one outlier
	if p50 := h.Percentile(50); p50 != 15 {
		t.Fatalf("p50 = %d, want 15", p50)
	}
	p999 := h.Percentile(99.9)
	if p999 < 1<<20 {
		t.Fatalf("p99.9 = %d, want >= outlier", p999)
	}
}

// TestHistogramQuantileInterpolation pins the interpolated quantile against
// hand-computed exact values. Samples {4, 8, 12, 16}: bucket 3 holds {4}
// (range [4,8)), bucket 4 holds {8, 12} (range [8,16)), bucket 5 holds {16}
// (range [16,32)).
func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{4, 8, 12, 16} {
		h.Observe(v)
	}
	// q=0.5: rank 2 lands in bucket 4 with cumBefore=1, count=2:
	// 8 + (2-1)/2 * 8 = 12 exactly.
	if got := h.Quantile(0.5); got != 12 {
		t.Fatalf("Quantile(0.5) = %v, want 12", got)
	}
	// q=0.25: rank 1 lands in bucket 3 (cumBefore=0, count=1):
	// 4 + 1/1 * 4 = 8, clamped nowhere (8 <= max).
	if got := h.Quantile(0.25); got != 8 {
		t.Fatalf("Quantile(0.25) = %v, want 8", got)
	}
	// q=0.95: rank 3.8 lands in bucket 5: 16 + 0.8*16 = 28.8, clamped to
	// max=16 because nothing larger than 16 was ever observed.
	if got := h.Quantile(0.95); got != 16 {
		t.Fatalf("Quantile(0.95) = %v, want 16 (clamped to max)", got)
	}
	// Edge behaviour: q<=0 -> min, q>=1 -> max, empty -> 0.
	if got := h.Quantile(0); got != 4 {
		t.Fatalf("Quantile(0) = %v, want min 4", got)
	}
	if got := h.Quantile(1); got != 16 {
		t.Fatalf("Quantile(1) = %v, want max 16", got)
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile(0.5) = %v, want 0", got)
	}
	// Zero samples report quantile 0 (bucket 0 has no width to
	// interpolate over).
	var zeros Histogram
	zeros.Observe(0)
	zeros.Observe(0)
	if got := zeros.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero Quantile(0.5) = %v, want 0", got)
	}
}

func TestHistogramMergeEqualsCombinedObservation(t *testing.T) {
	var a, b, all Histogram
	for i := uint64(0); i < 100; i++ {
		v := i * i % 977
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	a.Merge(&b)
	if a != all {
		t.Fatalf("merged %+v != combined %+v", a, all)
	}
	var empty Histogram
	a.Merge(&empty) // merging an empty histogram must not disturb min
	if a != all {
		t.Fatal("merging empty changed the histogram")
	}
}

// TestHistogramCheckpointRoundTrip is satellite 3's first property: the
// histogram survives a save/restore bit-identically — restoring and saving
// again yields the exact same byte stream.
func TestHistogramCheckpointRoundTrip(t *testing.T) {
	var h Histogram
	for i := uint64(1); i < 1000; i += 7 {
		h.Observe(i * 13)
	}
	var first bytes.Buffer
	w := ckpt.NewWriter(&first)
	if err := h.SaveState(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var back Histogram
	if err := back.RestoreState(ckpt.NewReader(bytes.NewReader(first.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("restored %+v != saved %+v", back, h)
	}

	var second bytes.Buffer
	w2 := ckpt.NewWriter(&second)
	if err := back.SaveState(w2); err != nil {
		t.Fatal(err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("checkpoint round-trip is not bit-identical")
	}
}
