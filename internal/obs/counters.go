package obs

import (
	"sync/atomic"

	"gem5rtl/internal/stats"
)

// Host-wide warm-start checkpoint-cache counters. The experiments
// CheckpointCache mirrors its per-cache hit/miss/stale counts here, so
// warm-start effectiveness is visible wherever host metrics are: the
// HostMonitor JSONL stream, interval dumps over a registry built with
// RegisterHostStats, and the sweep service's status endpoint.
var (
	ckptHits    atomic.Uint64
	ckptMisses  atomic.Uint64
	ckptStale   atomic.Uint64
	ckptCorrupt atomic.Uint64
)

// CountCkptHit records one warm-start snapshot restore.
func CountCkptHit() { ckptHits.Add(1) }

// CountCkptMiss records one cold run caused by an absent snapshot.
func CountCkptMiss() { ckptMisses.Add(1) }

// CountCkptStale records one dropped unrestorable snapshot.
func CountCkptStale() { ckptStale.Add(1) }

// CountCkptCorrupt records one persisted snapshot rejected by its integrity
// trailer (torn write, bit rot) and degraded to a cold run.
func CountCkptCorrupt() { ckptCorrupt.Add(1) }

// CkptCacheCounts returns the host-wide warm-start cache counters.
func CkptCacheCounts() (hits, misses, stale, corrupt uint64) {
	return ckptHits.Load(), ckptMisses.Load(), ckptStale.Load(), ckptCorrupt.Load()
}

// RegisterHostStats registers the host-wide observability counters —
// dispatched simulator events and warm-start cache effectiveness — into a
// stats.Registry, so host-side consumers (the sweep service's status and
// progress streams) report them alongside their own gauges.
func RegisterHostStats(reg *stats.Registry) {
	reg.Register("host.events", "simulator events dispatched host-wide",
		func() float64 { return float64(HostEvents()) })
	reg.Register("host.ckpt.hits", "warm-start snapshots restored",
		func() float64 { h, _, _, _ := CkptCacheCounts(); return float64(h) })
	reg.Register("host.ckpt.misses", "cold runs with no warm-start snapshot",
		func() float64 { _, m, _, _ := CkptCacheCounts(); return float64(m) })
	reg.Register("host.ckpt.stale", "unrestorable warm-start snapshots dropped",
		func() float64 { _, _, s, _ := CkptCacheCounts(); return float64(s) })
	reg.Register("host.ckpt.corrupt", "corrupt warm-start snapshots rejected",
		func() float64 { _, _, _, c := CkptCacheCounts(); return float64(c) })
}
