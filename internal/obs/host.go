package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// hostEvents counts simulator events dispatched across every system on this
// host (all sweep workers). It feeds events-per-second in HostMonitor.
var hostEvents atomic.Uint64

// CountEvents adds n dispatched events to the host-wide counter. Experiment
// runners call it once per completed point; per-event counting would touch
// an atomic on the hot path.
func CountEvents(n uint64) { hostEvents.Add(n) }

// HostEvents returns the host-wide dispatched-event total.
func HostEvents() uint64 { return hostEvents.Load() }

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") using a
// private mux, so profiling the simulator never requires the default mux.
// It returns a stop function that closes the listener.
func StartPprof(addr string) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: pprof listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return func() { srv.Close() }, nil
}

// HostMonitor periodically samples host-side runtime metrics — wall clock,
// goroutines, heap bytes, simulator events and events/second — and writes
// them as JSONL. It gives Table 2/3-style overhead numbers a host profile
// to stand on.
type HostMonitor struct {
	// Interval between samples (0 = 1s).
	Interval time.Duration
	// W receives one JSON object per sample.
	W io.Writer

	mu      sync.Mutex
	stopCh  chan struct{}
	doneCh  chan struct{}
	started time.Time
	lastEv  uint64
	lastAt  time.Time
}

type hostSample struct {
	WallMs       int64   `json:"wall_ms"`
	Goroutines   int     `json:"goroutines"`
	HeapBytes    uint64  `json:"heap_bytes"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	CkptHits     uint64  `json:"ckpt_hits"`
	CkptMisses   uint64  `json:"ckpt_misses"`
	CkptStale    uint64  `json:"ckpt_stale"`
	CkptCorrupt  uint64  `json:"ckpt_corrupt"`
}

// Start launches the sampling goroutine. Safe to call once.
func (m *HostMonitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopCh != nil {
		return
	}
	interval := m.Interval
	if interval == 0 {
		interval = time.Second
	}
	m.stopCh = make(chan struct{})
	m.doneCh = make(chan struct{})
	m.started = time.Now()
	m.lastAt = m.started
	m.lastEv = HostEvents()
	go m.loop(interval, m.stopCh, m.doneCh)
}

// Stop halts sampling, emitting one final sample so short runs still
// produce a record.
func (m *HostMonitor) Stop() {
	m.mu.Lock()
	stop, done := m.stopCh, m.doneCh
	m.stopCh, m.doneCh = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (m *HostMonitor) loop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.emit()
		case <-stop:
			m.emit()
			return
		}
	}
}

func (m *HostMonitor) emit() {
	if m.W == nil {
		return
	}
	now := time.Now()
	ev := HostEvents()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	dt := now.Sub(m.lastAt).Seconds()
	var eps float64
	if dt > 0 {
		eps = float64(ev-m.lastEv) / dt
	}
	hits, misses, stale, corrupt := CkptCacheCounts()
	s := hostSample{
		WallMs:       now.Sub(m.started).Milliseconds(),
		Goroutines:   runtime.NumGoroutine(),
		HeapBytes:    ms.HeapAlloc,
		Events:       ev,
		EventsPerSec: eps,
		CkptHits:     hits,
		CkptMisses:   misses,
		CkptStale:    stale,
		CkptCorrupt:  corrupt,
	}
	if b, err := json.Marshal(s); err == nil {
		fmt.Fprintf(m.W, "%s\n", b)
	}
	m.lastEv, m.lastAt = ev, now
}
