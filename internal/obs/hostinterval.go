package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"gem5rtl/internal/stats"
)

// HostIntervalStreamer is the wall-clock counterpart of IntervalDumper: it
// periodically samples a stats.Registry in host time and writes one
// IntervalRecord per period as JSONL, with Tick carrying elapsed host
// milliseconds. The sweep service uses it to stream live job progress —
// the same telescoping-delta contract as the simulated-time dumper, so
// column sums over a stream equal the end-to-start totals exactly.
type HostIntervalStreamer struct {
	// Reg is the registry to sample.
	Reg *stats.Registry
	// W receives one JSON record per interval. If it implements
	// http.Flusher, every record is flushed immediately (streaming over a
	// chunked HTTP response).
	W io.Writer
	// Period between records (0 = 1s).
	Period time.Duration
	// Annotate, when non-nil, is called on each record before it is
	// written, letting the producer attach context (e.g. a job status
	// snapshot) in the record's Extra field.
	Annotate func(*IntervalRecord)

	names   []string
	prev    []float64
	n       int
	started time.Time
}

// Run streams records until ctx is cancelled, then emits one final record
// (so short streams still deliver the totals) and returns. The first record
// is emitted after one full period. Run returns the first write error, or
// nil on clean cancellation.
func (h *HostIntervalStreamer) Run(ctx context.Context) error {
	period := h.Period
	if period == 0 {
		period = time.Second
	}
	h.names = h.Reg.Names()
	h.prev = h.sample()
	h.started = time.Now()
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := h.emit(); err != nil {
				return err
			}
		case <-ctx.Done():
			return h.emit()
		}
	}
}

func (h *HostIntervalStreamer) sample() []float64 {
	out := make([]float64, len(h.names))
	for i, name := range h.names {
		v, _ := h.Reg.Get(name)
		out[i] = v
	}
	return out
}

func (h *HostIntervalStreamer) emit() error {
	cur := h.sample()
	deltas := make(map[string]float64, len(h.names))
	for i, name := range h.names {
		deltas[name] = cur[i] - h.prev[i]
	}
	rec := IntervalRecord{
		Tick:     uint64(time.Since(h.started).Milliseconds()),
		Interval: h.n,
		Stats:    deltas,
	}
	if h.Annotate != nil {
		h.Annotate(&rec)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(h.W, "%s\n", b); err != nil {
		return err
	}
	if f, ok := h.W.(http.Flusher); ok {
		f.Flush()
	}
	h.prev = cur
	h.n++
	return nil
}
