package obs

import (
	"fmt"
	"sort"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/stats"
)

func errTapCount(got, want int) error {
	return fmt.Errorf("obs: checkpoint has %d latency taps, profile has %d (attach topology must match)", got, want)
}

func errTapName(got, want string) error {
	return fmt.Errorf("obs: checkpoint tap %q does not match profile tap %q", got, want)
}

// inflightRec remembers where and when a packet was first seen by a tap.
type inflightRec struct {
	start sim.Tick
	cmd   port.Cmd
	addr  uint64
}

// LatencyTap is a port.LinkTap that measures packet lifetimes across one
// link: a request is stamped on first sighting and its latency observed when
// the matching response crosses back. Functional accesses (packet ID 0) and
// posted traffic (no response expected) are ignored. A refused-and-retried
// delivery re-passes the tap; only the first sighting is stamped, so retries
// count toward the packet's latency rather than resetting it.
type LatencyTap struct {
	name     string
	q        *sim.EventQueue
	hist     Histogram
	inflight map[uint64]inflightRec
	chrome   *ChromeTrace
}

// Name returns the tap's label (histogram and Chrome-trace track name).
func (t *LatencyTap) Name() string { return t.name }

// Hist exposes the tap's latency histogram.
func (t *LatencyTap) Hist() *Histogram { return &t.hist }

// InFlight returns the number of stamped packets still awaiting a response.
func (t *LatencyTap) InFlight() int { return len(t.inflight) }

// TapReq implements port.LinkTap.
func (t *LatencyTap) TapReq(pkt *port.Packet) port.TapAction {
	if pkt.ID == 0 || !pkt.NeedsResponse() {
		return port.TapPass
	}
	if _, seen := t.inflight[pkt.ID]; !seen {
		t.inflight[pkt.ID] = inflightRec{start: t.q.Now(), cmd: pkt.Cmd, addr: pkt.Addr}
	}
	return port.TapPass
}

// TapResp implements port.LinkTap.
func (t *LatencyTap) TapResp(pkt *port.Packet) port.TapAction {
	rec, ok := t.inflight[pkt.ID]
	if !ok {
		return port.TapPass
	}
	delete(t.inflight, pkt.ID)
	now := t.q.Now()
	if now < rec.start {
		// Cannot happen on a causal queue; guard anyway so a corrupted
		// restore can never poison the histogram with a wrapped latency.
		return port.TapPass
	}
	t.hist.Observe(uint64(now - rec.start))
	if t.chrome != nil {
		t.chrome.Span(t.name, rec.cmd.String(), rec.addr, rec.start, now)
	}
	return port.TapPass
}

// LatencyProfile owns the LatencyTaps of one System: per-component taps on
// interior links plus end-to-end taps at the requestors' edges. Tap order is
// fixed at attach time, making stats registration and checkpoint layout
// deterministic.
type LatencyProfile struct {
	q      *sim.EventQueue
	taps   []*LatencyTap
	byName map[string]*LatencyTap
	// Chrome, when non-nil, receives one span per completed packet per tap.
	Chrome *ChromeTrace
}

// NewLatencyProfile creates an empty profile for one queue.
func NewLatencyProfile(q *sim.EventQueue) *LatencyProfile {
	return &LatencyProfile{q: q, byName: map[string]*LatencyTap{}}
}

// Tap creates (or returns) the named tap. Interpose it on a link with
// port.Interpose(reqPort, p.Tap("llc.in")).
func (p *LatencyProfile) Tap(name string) *LatencyTap {
	if t, ok := p.byName[name]; ok {
		return t
	}
	t := &LatencyTap{name: name, q: p.q, inflight: map[uint64]inflightRec{}, chrome: p.Chrome}
	p.taps = append(p.taps, t)
	p.byName[name] = t
	return t
}

// Taps returns the profile's taps in attach order.
func (p *LatencyProfile) Taps() []*LatencyTap { return append([]*LatencyTap(nil), p.taps...) }

// Lookup returns the named tap, or nil.
func (p *LatencyProfile) Lookup(name string) *LatencyTap { return p.byName[name] }

// Register adds each tap's summary statistics to the registry under
// obs.lat.<tap>.{samples,mean,min,max,p50,p95,p99}. The quantiles are
// interpolated within their log-2 bucket (Histogram.Quantile), so interval
// stat dumps and the sweepd metrics endpoint see smooth estimates rather
// than power-of-two bucket tops.
func (p *LatencyProfile) Register(r *stats.Registry) {
	for _, t := range p.taps {
		t := t
		base := "obs.lat." + t.name
		r.Register(base+".samples", "packets measured at "+t.name,
			func() float64 { return float64(t.hist.Count()) })
		r.Register(base+".mean", "mean packet latency (ticks) at "+t.name,
			func() float64 { return t.hist.Mean() })
		r.Register(base+".min", "min packet latency (ticks) at "+t.name,
			func() float64 { return float64(t.hist.Min()) })
		r.Register(base+".max", "max packet latency (ticks) at "+t.name,
			func() float64 { return float64(t.hist.Max()) })
		r.Register(base+".p50", "median packet latency (ticks, interpolated) at "+t.name,
			func() float64 { return t.hist.Quantile(0.50) })
		r.Register(base+".p95", "p95 packet latency (ticks, interpolated) at "+t.name,
			func() float64 { return t.hist.Quantile(0.95) })
		r.Register(base+".p99", "p99 packet latency (ticks, interpolated) at "+t.name,
			func() float64 { return t.hist.Quantile(0.99) })
	}
}

// SaveState implements ckpt.Checkpointable. Taps are written in attach
// order; in-flight stamps are written sorted by packet ID so the stream is
// deterministic regardless of map iteration order.
func (p *LatencyProfile) SaveState(w *ckpt.Writer) error {
	w.Section("obs.latency")
	w.Int(len(p.taps))
	for _, t := range p.taps {
		w.String(t.name)
		if err := t.hist.SaveState(w); err != nil {
			return err
		}
		ids := make([]uint64, 0, len(t.inflight))
		for id := range t.inflight {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.Int(len(ids))
		for _, id := range ids {
			rec := t.inflight[id]
			w.U64(id)
			w.U64(uint64(rec.start))
			w.Int(int(rec.cmd))
			w.U64(rec.addr)
		}
	}
	return w.Err()
}

// RestoreState implements ckpt.Checkpointable. The profile must have been
// attached with the same tap topology as at save time.
func (p *LatencyProfile) RestoreState(r *ckpt.Reader) error {
	r.Section("obs.latency")
	n := r.Int()
	if r.Err() == nil && n != len(p.taps) {
		r.Fail(errTapCount(n, len(p.taps)))
		return r.Err()
	}
	for _, t := range p.taps {
		name := r.String()
		if r.Err() == nil && name != t.name {
			r.Fail(errTapName(name, t.name))
			return r.Err()
		}
		if err := t.hist.RestoreState(r); err != nil {
			return err
		}
		m := r.Len()
		t.inflight = make(map[uint64]inflightRec, m)
		for i := 0; i < m; i++ {
			id := r.U64()
			rec := inflightRec{
				start: sim.Tick(r.U64()),
				cmd:   port.Cmd(r.Int()),
				addr:  r.U64(),
			}
			if r.Err() != nil {
				break
			}
			t.inflight[id] = rec
		}
	}
	return r.Err()
}
