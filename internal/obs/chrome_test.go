package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestChromeTraceJSON(t *testing.T) {
	c := NewChromeTrace()
	c.Span("llc.in", "ReadReq", 0x1000, 100_000, 350_000)
	c.Span("mem.in", "WriteReq", 0x2000, 200_000, 400_000)
	c.Span("llc.in", "ReadReq", 0x1040, 500_000, 600_000)

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", got.DisplayTimeUnit)
	}
	// Two thread_name metadata events then three spans.
	if len(got.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(got.TraceEvents))
	}
	meta := got.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "thread_name" || meta.Args["name"] != "llc.in" {
		t.Fatalf("first metadata event = %+v", meta)
	}
	span := got.TraceEvents[2]
	if span.Ph != "X" || span.Name != "ReadReq" {
		t.Fatalf("span = %+v", span)
	}
	if span.Ts != 0.1 || span.Dur != 0.25 { // 100000 ps = 0.1 us
		t.Fatalf("ts=%v dur=%v, want 0.1/0.25", span.Ts, span.Dur)
	}
	// Same track, same tid; different track, different tid.
	if got.TraceEvents[2].Tid != got.TraceEvents[4].Tid {
		t.Fatal("same track got different tids")
	}
	if got.TraceEvents[2].Tid == got.TraceEvents[3].Tid {
		t.Fatal("different tracks share a tid")
	}
}

func TestChromeTraceSpanCap(t *testing.T) {
	c := NewChromeTrace()
	c.MaxSpans = 2
	for i := 0; i < 5; i++ {
		c.Span("t", "x", 0, 0, 1)
	}
	if c.Spans() != 2 || c.Dropped != 3 {
		t.Fatalf("spans=%d dropped=%d, want 2/3", c.Spans(), c.Dropped)
	}
}
