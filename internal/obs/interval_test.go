package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gem5rtl/internal/sim"
	"gem5rtl/internal/stats"
)

// TestIntervalDeltasSumToTotals is the acceptance property: the per-name
// column sums of every interval record (including the final partial one
// emitted by Close) equal the end-of-run registry totals exactly.
func TestIntervalDeltasSumToTotals(t *testing.T) {
	q := sim.NewEventQueue()
	reg := stats.NewRegistry()
	var hits, misses uint64
	reg.RegisterCounter("c.hits", "", &hits)
	reg.RegisterCounter("c.misses", "", &misses)

	// A workload that bumps counters at irregular ticks, past several
	// interval boundaries and beyond the last full one.
	for i := sim.Tick(1); i <= 25; i++ {
		at := i * 137
		q.ScheduleFunc("work", at, func() {
			hits += 3
			if at%2 == 0 {
				misses++
			}
		})
	}

	var buf bytes.Buffer
	d, err := NewIntervalDumper(q, reg, &buf, 500, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	// The dump event reschedules itself, so run to a bound (just past the
	// last workload tick, mid-interval) rather than draining the queue.
	q.RunUntil(25*137 + 30)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	sums := map[string]float64{}
	records := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec struct {
			Tick     uint64             `json:"tick"`
			Interval int                `json:"interval"`
			Stats    map[string]float64 `json:"stats"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("record %d is not valid JSON: %v", records, err)
		}
		if rec.Interval != records {
			t.Fatalf("interval numbering %d, want %d", rec.Interval, records)
		}
		for k, v := range rec.Stats {
			sums[k] += v
		}
		records++
	}
	if records < 3 {
		t.Fatalf("only %d records; workload should span several intervals", records)
	}
	if sums["c.hits"] != float64(hits) || sums["c.misses"] != float64(misses) {
		t.Fatalf("delta sums %v != totals hits=%d misses=%d", sums, hits, misses)
	}
}

func TestIntervalCSV(t *testing.T) {
	q := sim.NewEventQueue()
	reg := stats.NewRegistry()
	var x uint64
	reg.RegisterCounter("b.x", "", &x)
	reg.Register("a.y", "", func() float64 { return float64(x) * 2 })

	var buf bytes.Buffer
	d, err := NewIntervalDumper(q, reg, &buf, 100, "csv")
	if err != nil {
		t.Fatal(err)
	}
	q.ScheduleFunc("work", 150, func() { x = 7 })
	d.Start()
	q.RunUntil(210)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "tick,interval,a.y,b.x" {
		t.Fatalf("header = %q (names must be sorted)", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("lines = %v", lines)
	}
	// First interval (tick 100): nothing happened yet.
	if lines[1] != "100,0,0,0" {
		t.Fatalf("first record = %q", lines[1])
	}
	// Second interval (tick 200) sees the tick-150 update.
	if lines[2] != "200,1,14,7" {
		t.Fatalf("second record = %q", lines[2])
	}
}

func TestIntervalDumperRejectsBadConfig(t *testing.T) {
	q := sim.NewEventQueue()
	reg := stats.NewRegistry()
	if _, err := NewIntervalDumper(q, reg, &bytes.Buffer{}, 100, "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := NewIntervalDumper(q, reg, &bytes.Buffer{}, 0, "jsonl"); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestIntervalStopIsCheckpointSafe(t *testing.T) {
	q := sim.NewEventQueue()
	reg := stats.NewRegistry()
	d, err := NewIntervalDumper(q, reg, &bytes.Buffer{}, 100, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	d.Stop()
	if !q.Empty() {
		t.Fatal("Stop left the dump event scheduled")
	}
}
