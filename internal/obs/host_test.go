package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestHostEventsCounter(t *testing.T) {
	before := HostEvents()
	CountEvents(5)
	CountEvents(7)
	if got := HostEvents() - before; got != 12 {
		t.Fatalf("counted %d, want 12", got)
	}
}

// syncBuffer makes a bytes.Buffer safe for the monitor goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

func TestHostMonitorEmitsValidSamples(t *testing.T) {
	var buf syncBuffer
	m := &HostMonitor{Interval: time.Hour, W: &buf} // Stop() forces a final sample
	m.Start()
	CountEvents(100)
	m.Stop()
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	samples := 0
	for sc.Scan() {
		var s struct {
			WallMs     float64 `json:"wall_ms"`
			Goroutines int     `json:"goroutines"`
			HeapBytes  uint64  `json:"heap_bytes"`
			Events     uint64  `json:"events"`
		}
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("sample is not valid JSON: %v (%s)", err, sc.Text())
		}
		if s.Goroutines <= 0 || s.HeapBytes == 0 {
			t.Fatalf("implausible sample %+v", s)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples emitted")
	}
	m.Stop() // double Stop must be safe
}

func TestStartPprofServes(t *testing.T) {
	stop, err := StartPprof("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer stop()
}

// TestStartPprofBadAddr exercises the error path without binding anything.
func TestStartPprofBadAddr(t *testing.T) {
	if _, err := StartPprof("definitely-not-an-addr"); err == nil {
		t.Fatal("bad address accepted")
	}
	_ = http.DefaultServeMux // pprof must not touch the default mux
}
