package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gem5rtl/internal/sim"
	"gem5rtl/internal/stats"
)

// IntervalRecord is one emitted interval: the boundary time (a simulated
// tick for IntervalDumper, elapsed host milliseconds for HostIntervalStreamer),
// a zero-based interval index, and the per-name stat deltas over the
// interval. Extra carries producer-specific context (e.g. the sweep
// service's job status snapshot on a progress stream).
type IntervalRecord struct {
	Tick     uint64             `json:"tick"`
	Interval int                `json:"interval"`
	Stats    map[string]float64 `json:"stats"`
	Extra    any                `json:"extra,omitempty"`
}

// IntervalDumper periodically samples a stats.Registry on the event queue
// and writes delta records — the per-interval counterpart of the end-of-run
// Dump, enabling Figure-5-style counter-vs-stats validation per window.
//
// Records telescope: every interval's delta is (current - previous), and
// Close emits the final partial interval, so the per-name column sums of a
// full run equal the end-of-run totals exactly.
type IntervalDumper struct {
	q        *sim.EventQueue
	reg      *stats.Registry
	w        io.Writer
	format   string // "jsonl" or "csv"
	interval sim.Tick
	names    []string
	prev     []float64
	ev       *sim.Event
	n        int
	lastTick sim.Tick
	started  bool
	closed   bool
}

// NewIntervalDumper creates a dumper emitting one record per interval in
// the given format ("jsonl" or "csv").
func NewIntervalDumper(q *sim.EventQueue, reg *stats.Registry, w io.Writer, interval sim.Tick, format string) (*IntervalDumper, error) {
	switch format {
	case "jsonl", "csv":
	default:
		return nil, fmt.Errorf("obs: unknown interval stats format %q (want jsonl or csv)", format)
	}
	if interval == 0 {
		return nil, fmt.Errorf("obs: interval stats period must be > 0")
	}
	return &IntervalDumper{q: q, reg: reg, w: w, format: format, interval: interval}, nil
}

// Start fixes the stat-name set (sorted), takes the baseline sample, and
// schedules the first dump. Stats run at PriStats so each record observes
// the post-update state of its boundary tick.
func (d *IntervalDumper) Start() {
	if d.started {
		return
	}
	d.started = true
	d.names = d.reg.Names()
	d.prev = d.sample()
	d.lastTick = d.q.Now()
	if d.format == "csv" {
		fmt.Fprintf(d.w, "tick,interval,%s\n", strings.Join(d.names, ","))
	}
	d.ev = sim.NewEventPri("obs.interval", sim.PriStats, d.tick).SetOwner(d.q.Owner("obs", "interval"))
	d.q.Schedule(d.ev, d.q.Now()+d.interval)
}

// Stop deschedules the pending dump event without emitting a final record;
// use it before checkpointing (host-side events are not serialisable).
func (d *IntervalDumper) Stop() {
	if d.ev != nil && d.ev.Scheduled() {
		d.q.Deschedule(d.ev)
	}
}

// Close emits the final partial interval (if simulated time has advanced
// past the last record) and stops the dumper. After Close, column sums
// equal end-of-run totals.
func (d *IntervalDumper) Close() error {
	if !d.started || d.closed {
		return nil
	}
	d.closed = true
	d.Stop()
	if d.q.Now() > d.lastTick {
		d.emit()
	}
	return nil
}

func (d *IntervalDumper) tick() {
	d.emit()
	d.q.Schedule(d.ev, d.q.Now()+d.interval)
}

func (d *IntervalDumper) sample() []float64 {
	out := make([]float64, len(d.names))
	for i, name := range d.names {
		v, _ := d.reg.Get(name)
		out[i] = v
	}
	return out
}

func (d *IntervalDumper) emit() {
	cur := d.sample()
	switch d.format {
	case "jsonl":
		deltas := make(map[string]float64, len(d.names))
		for i, name := range d.names {
			deltas[name] = cur[i] - d.prev[i]
		}
		rec := IntervalRecord{Tick: uint64(d.q.Now()), Interval: d.n, Stats: deltas}
		b, err := json.Marshal(rec) // map keys marshal sorted
		if err == nil {
			_, err = fmt.Fprintf(d.w, "%s\n", b)
		}
		_ = err
	case "csv":
		var sb strings.Builder
		sb.WriteString(strconv.FormatUint(uint64(d.q.Now()), 10))
		sb.WriteByte(',')
		sb.WriteString(strconv.Itoa(d.n))
		for i := range d.names {
			sb.WriteByte(',')
			sb.WriteString(strconv.FormatFloat(cur[i]-d.prev[i], 'g', -1, 64))
		}
		fmt.Fprintln(d.w, sb.String())
	}
	d.prev = cur
	d.lastTick = d.q.Now()
	d.n++
}
