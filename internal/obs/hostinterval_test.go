package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gem5rtl/internal/stats"
)

// lockedBuffer lets the test read what the streamer goroutine wrote.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestHostIntervalStreamerConcurrentMutation runs the streamer while worker
// goroutines hammer the sampled values — the sweepd pattern, where counters
// advance on worker goroutines while /v1/stream samples them. Run with the
// race detector. It also checks the telescoping-delta contract: once the
// mutators settle, the column sums over the stream equal the final totals.
func TestHostIntervalStreamerConcurrentMutation(t *testing.T) {
	reg := stats.NewRegistry()
	var done, retried atomic.Uint64
	var mu sync.Mutex
	gauge := 0.0
	reg.Register("points.done", "completed points", func() float64 {
		return float64(done.Load())
	})
	reg.Register("points.retried", "retried points", func() float64 {
		return float64(retried.Load())
	})
	reg.Register("workers.utilization", "busy fraction", func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return gauge
	})

	var out lockedBuffer
	h := &HostIntervalStreamer{Reg: reg, W: &out, Period: time.Millisecond,
		Annotate: func(rec *IntervalRecord) { rec.Extra = map[string]any{"job": "j1"} }}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- h.Run(ctx) }()
	// The streamer's baseline sample precedes its first record; once one
	// record is out the baseline is pinned at zero, so the telescoping sums
	// below have a known start.
	for len(out.Bytes()) == 0 {
		time.Sleep(time.Millisecond)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				done.Add(1)
				if i%7 == 0 {
					retried.Add(1)
				}
				if i%100 == 0 {
					mu.Lock()
					gauge = float64(w*i) / 20000
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	// Mutators have settled; the cancellation-path record samples the final
	// totals, so the stream's deltas must now telescope to them exactly.
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("streamer returned error: %v", err)
	}

	var sumDone, sumRetried float64
	records := 0
	sc := bufio.NewScanner(bytes.NewReader(out.Bytes()))
	for sc.Scan() {
		var rec IntervalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("record %d is not valid JSON: %v\n%s", records, err, sc.Text())
		}
		if rec.Interval != records {
			t.Fatalf("record %d has interval %d", records, rec.Interval)
		}
		sumDone += rec.Stats["points.done"]
		sumRetried += rec.Stats["points.retried"]
		records++
	}
	if records == 0 {
		t.Fatal("streamer emitted no records")
	}
	if want := float64(done.Load()); sumDone != want {
		t.Fatalf("points.done deltas sum to %v, want %v", sumDone, want)
	}
	if want := float64(retried.Load()); sumRetried != want {
		t.Fatalf("points.retried deltas sum to %v, want %v", sumRetried, want)
	}
}
