package obs

import (
	"bytes"
	"testing"

	"gem5rtl/internal/ckpt"
	"gem5rtl/internal/port"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/stats"
)

// echoResponder responds to every request after a fixed latency.
type echoResponder struct {
	q       *sim.EventQueue
	prt     *port.ResponsePort
	rq      *port.RespQueue
	latency sim.Tick
}

func newEchoResponder(q *sim.EventQueue, latency sim.Tick) *echoResponder {
	r := &echoResponder{q: q, latency: latency}
	r.prt = port.NewResponsePort("echo", r)
	r.rq = port.NewRespQueue("echo", q, r.prt)
	return r
}

func (r *echoResponder) RecvTimingReq(pkt *port.Packet) bool {
	if !pkt.NeedsResponse() {
		return true
	}
	pkt.MakeResponse()
	if pkt.Cmd == port.ReadResp {
		pkt.AllocateData()
	}
	r.rq.Schedule(pkt, r.q.Now()+r.latency)
	return true
}

func (r *echoResponder) RecvRespRetry() { r.rq.RecvRespRetry() }

// sink accepts every response.
type sink struct{ prt *port.RequestPort }

func newSink() *sink {
	s := &sink{}
	s.prt = port.NewRequestPort("sink", s)
	return s
}

func (s *sink) RecvTimingResp(*port.Packet) bool { return true }
func (s *sink) RecvReqRetry()                    {}

func TestLatencyTapMeasuresRoundTrip(t *testing.T) {
	q := sim.NewEventQueue()
	resp := newEchoResponder(q, 250)
	req := newSink()
	port.Bind(req.prt, resp.prt)
	p := NewLatencyProfile(q)
	port.Interpose(req.prt, p.Tap("link"))

	q.ScheduleFunc("send", 100, func() {
		if !req.prt.SendTimingReq(port.NewReadPacket(0x40, 64)) {
			t.Error("request refused")
		}
	})
	q.Run()

	h := p.Lookup("link").Hist()
	if h.Count() != 1 {
		t.Fatalf("samples = %d, want 1", h.Count())
	}
	if h.Min() != 250 || h.Max() != 250 {
		t.Fatalf("latency = [%d,%d], want 250", h.Min(), h.Max())
	}
	if p.Lookup("link").InFlight() != 0 {
		t.Fatal("in-flight not drained")
	}
}

func TestLatencyTapIgnoresFunctionalAndPosted(t *testing.T) {
	q := sim.NewEventQueue()
	tap := NewLatencyProfile(q).Tap("x")
	tap.TapReq(port.NewFunctionalRead(0, 8)) // ID 0
	posted := port.NewPacket(port.WriteReq, 0, 8)
	posted.Cmd = port.WritebackDirty // posted: no response expected
	tap.TapReq(posted)
	if tap.InFlight() != 0 {
		t.Fatalf("in-flight = %d, want 0", tap.InFlight())
	}
}

func TestLatencyTapStampsFirstSightingOnly(t *testing.T) {
	q := sim.NewEventQueue()
	tap := NewLatencyProfile(q).Tap("x")
	pkt := port.NewReadPacket(0x80, 64)
	q.ScheduleFunc("first", 10, func() { tap.TapReq(pkt) })
	// A refused-then-redelivered request re-passes the tap later; the
	// original stamp must win so the retry delay counts as latency.
	q.ScheduleFunc("redeliver", 50, func() { tap.TapReq(pkt) })
	q.ScheduleFunc("resp", 110, func() {
		pkt.MakeResponse()
		tap.TapResp(pkt)
	})
	q.Run()
	if got := tap.Hist().Max(); got != 100 {
		t.Fatalf("latency = %d, want 100 (first sighting at t=10)", got)
	}
}

func TestLatencyProfileRegisterStats(t *testing.T) {
	q := sim.NewEventQueue()
	p := NewLatencyProfile(q)
	p.Tap("a")
	p.Tap("b")
	reg := stats.NewRegistry()
	p.Register(reg)
	for _, name := range []string{
		"obs.lat.a.samples", "obs.lat.a.mean", "obs.lat.a.min",
		"obs.lat.a.max", "obs.lat.a.p50", "obs.lat.a.p95",
		"obs.lat.a.p99", "obs.lat.b.samples",
	} {
		if _, ok := reg.Get(name); !ok {
			t.Fatalf("stat %s not registered", name)
		}
	}
}

// TestLatencyStraddleCheckpoint is satellite 3's second property: a packet
// in flight across a checkpoint keeps its original inject tick, so the
// post-restore response yields the true (positive) latency.
func TestLatencyStraddleCheckpoint(t *testing.T) {
	q := sim.NewEventQueue()
	p := NewLatencyProfile(q)
	tap := p.Tap("link")
	pkt := port.NewReadPacket(0xc0, 64)
	q.ScheduleFunc("inject", 100, func() { tap.TapReq(pkt) })
	q.Run() // now = 100, packet in flight

	var snap bytes.Buffer
	w := ckpt.NewWriter(&snap)
	if err := p.SaveState(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// "Fresh process": a new queue resumed past the checkpoint tick and a
	// freshly attached profile with the same topology.
	q2 := sim.NewEventQueue()
	p2 := NewLatencyProfile(q2)
	tap2 := p2.Tap("link")
	if err := p2.RestoreState(ckpt.NewReader(bytes.NewReader(snap.Bytes()))); err != nil {
		t.Fatal(err)
	}
	if tap2.InFlight() != 1 {
		t.Fatalf("restored in-flight = %d, want 1", tap2.InFlight())
	}
	q2.ScheduleFunc("resp", 700, func() {
		pkt.MakeResponse()
		tap2.TapResp(pkt)
	})
	q2.Run()
	h := tap2.Hist()
	if h.Count() != 1 || h.Max() != 600 {
		t.Fatalf("straddling latency = %d (n=%d), want 600", h.Max(), h.Count())
	}
	// A wrapped (negative) latency would land in the top bucket.
	if h.Bucket(histBuckets-1) != 0 {
		t.Fatal("negative latency wrapped into the top bucket")
	}
}

func TestLatencyProfileTopologyMismatch(t *testing.T) {
	q := sim.NewEventQueue()
	p := NewLatencyProfile(q)
	p.Tap("a")
	var snap bytes.Buffer
	w := ckpt.NewWriter(&snap)
	if err := p.SaveState(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	twoTaps := NewLatencyProfile(q)
	twoTaps.Tap("a")
	twoTaps.Tap("b")
	if err := twoTaps.RestoreState(ckpt.NewReader(bytes.NewReader(snap.Bytes()))); err == nil {
		t.Fatal("tap-count mismatch accepted")
	}

	renamed := NewLatencyProfile(q)
	renamed.Tap("z")
	if err := renamed.RestoreState(ckpt.NewReader(bytes.NewReader(snap.Bytes()))); err == nil {
		t.Fatal("tap-name mismatch accepted")
	}
}
