package obs

import (
	"math/bits"

	"gem5rtl/internal/ckpt"
)

// histBuckets is the number of log-2 buckets: bucket i counts values v with
// bits.Len64(v) == i, i.e. bucket 0 holds v == 0 and bucket i (i >= 1) holds
// the range [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a log-2 bucketed latency histogram. Buckets are mergeable
// across systems (parallel sweep points) and the whole struct round-trips
// bit-identically through a checkpoint.
type Histogram struct {
	buckets [histBuckets]uint64
	n       uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Merge folds other into h (for cross-system aggregation).
func (h *Histogram) Merge(other *Histogram) {
	if other.n == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Bucket returns the count in log-2 bucket i.
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Percentile returns an upper bound for the p-th percentile (p in [0,100]):
// the top of the bucket containing that rank. Log-2 bucketing bounds the
// answer within 2x, which is enough for latency distribution shape.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max
}

// Quantile returns the q-th quantile (q in [0, 1]) estimated by linear
// interpolation inside the containing log-2 bucket: the target rank
// q*Count() is located by walking the cumulative bucket counts, and the
// result is lo + (rank-cumBefore)/bucketCount * (hi-lo) for the bucket's
// value range [lo, hi). The estimate is clamped to the observed [Min, Max],
// so a quantile landing in the min or max sample's bucket never extrapolates
// past a value that was actually seen. q <= 0 returns Min, q >= 1 returns
// Max, and an empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.min)
	}
	if q >= 1 {
		return float64(h.max)
	}
	target := q * float64(h.n)
	var cum float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= target {
			if i == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(i-1))
			v := lo + (target-cum)/fc*lo
			if v < float64(h.min) {
				v = float64(h.min)
			}
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
		cum += fc
	}
	return float64(h.max)
}

// SaveState implements ckpt.Checkpointable.
func (h *Histogram) SaveState(w *ckpt.Writer) error {
	w.Section("obs.hist")
	w.U64(h.n)
	w.U64(h.sum)
	w.U64(h.min)
	w.U64(h.max)
	for _, b := range h.buckets {
		w.U64(b)
	}
	return w.Err()
}

// RestoreState implements ckpt.Checkpointable.
func (h *Histogram) RestoreState(r *ckpt.Reader) error {
	r.Section("obs.hist")
	h.n = r.U64()
	h.sum = r.U64()
	h.min = r.U64()
	h.max = r.U64()
	for i := range h.buckets {
		h.buckets[i] = r.U64()
	}
	return r.Err()
}
