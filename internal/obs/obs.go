// Package obs is the observability layer: gem5-style debug-flag tracing,
// packet-lifetime latency histograms, interval statistics time-series, and
// host-side exporters (Chrome trace-event JSON, pprof, runtime metrics).
//
// The design rule throughout is zero cost when off. A component holds a
// *Logger per debug flag; when the flag is disabled (or no Tracer is
// attached at all) that pointer is nil, and the guard `if l.On()` compiles
// to a nil check — the fmt arguments are never evaluated. This mirrors how
// gem5's DPRINTF vanishes behind `if (DTRACE(flag))`.
//
// All state is per-System (a Tracer/LatencyProfile belongs to one
// EventQueue), never global, so the parallel experiment runner can trace one
// point of a sweep while its siblings run untraced on other goroutines.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"gem5rtl/internal/sim"
)

// Flags understood by the tracer, mirroring gem5's debug-flag namespace.
// "all" enables every one of them.
var Flags = []string{"Cache", "CPU", "Mem", "NVDLA", "NoC", "PMU", "Port", "RTL"}

// Config selects what a Tracer records and where it writes.
type Config struct {
	// Flags is a comma-separated list of debug flags ("Cache,NVDLA"), or
	// "all". Empty disables tracing entirely.
	Flags string
	// Start/End bound the trace window in ticks. End == 0 means no end.
	Start sim.Tick
	End   sim.Tick
	// Out receives trace lines; nil keeps only the per-component ring
	// buffers (still useful for watchdog diagnostics).
	Out io.Writer
	// RingSize is the number of recent lines retained per component for
	// hang diagnostics. 0 means DefaultRingSize.
	RingSize int
}

// DefaultRingSize is the per-component trace-tail depth kept for
// watchdog diagnostics.
const DefaultRingSize = 16

// Tracer is the per-System debug trace sink. A nil *Tracer is valid and
// means tracing is off; Logger on a nil Tracer returns a nil *Logger.
type Tracer struct {
	q        *sim.EventQueue
	out      io.Writer
	all      bool
	flags    map[string]bool
	start    sim.Tick
	end      sim.Tick
	ringSize int
	rings    map[string]*ring
	order    []string // component first-seen order, for deterministic dumps
}

// NewTracer builds a tracer for the given queue. Unknown flag names are an
// error so a typo in -debug-flags fails loudly instead of tracing nothing.
func NewTracer(q *sim.EventQueue, cfg Config) (*Tracer, error) {
	t := &Tracer{
		q:        q,
		out:      cfg.Out,
		flags:    map[string]bool{},
		start:    cfg.Start,
		end:      cfg.End,
		ringSize: cfg.RingSize,
		rings:    map[string]*ring{},
	}
	if t.ringSize <= 0 {
		t.ringSize = DefaultRingSize
	}
	known := map[string]bool{}
	for _, f := range Flags {
		known[f] = true
	}
	for _, f := range strings.Split(cfg.Flags, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if strings.EqualFold(f, "all") {
			t.all = true
			continue
		}
		if !known[f] {
			return nil, fmt.Errorf("obs: unknown debug flag %q (have %s, or all)",
				f, strings.Join(Flags, ","))
		}
		t.flags[f] = true
	}
	return t, nil
}

// Enabled reports whether a debug flag is selected.
func (t *Tracer) Enabled(flag string) bool {
	if t == nil {
		return false
	}
	return t.all || t.flags[flag]
}

// Logger returns the component's logger for one debug flag, or nil when the
// flag is disabled — making every downstream trace guard a nil check.
func (t *Tracer) Logger(flag, component string) *Logger {
	if !t.Enabled(flag) {
		return nil
	}
	return &Logger{t: t, component: component}
}

// Tail returns up to n of the most recent trace lines recorded for a
// component (oldest first). It backs watchdog hang diagnostics.
func (t *Tracer) Tail(component string, n int) []string {
	if t == nil {
		return nil
	}
	r := t.rings[component]
	if r == nil {
		return nil
	}
	return r.tail(n)
}

// Components returns every component that has emitted at least one trace
// line, in first-emission order.
func (t *Tracer) Components() []string {
	if t == nil {
		return nil
	}
	return append([]string(nil), t.order...)
}

func (t *Tracer) record(component, line string) {
	r := t.rings[component]
	if r == nil {
		r = newRing(t.ringSize)
		t.rings[component] = r
		t.order = append(t.order, component)
	}
	r.push(line)
}

// Logger emits trace lines for one (flag, component) pair. The zero value of
// the pointer — nil — is the disabled state; both On and Logf are safe to
// call on it.
type Logger struct {
	t         *Tracer
	component string
}

// On reports whether a line emitted now would be recorded. Use it to guard
// argument evaluation: `if l.On() { l.Logf(...) }`.
func (l *Logger) On() bool {
	if l == nil {
		return false
	}
	now := l.t.q.Now()
	if now < l.t.start {
		return false
	}
	if l.t.end != 0 && now > l.t.end {
		return false
	}
	return true
}

// Logf emits one `tick: component: msg` line, gem5 DPRINTF style.
func (l *Logger) Logf(format string, args ...any) {
	if !l.On() {
		return
	}
	line := fmt.Sprintf("%d: %s: %s", uint64(l.t.q.Now()), l.component,
		fmt.Sprintf(format, args...))
	if l.t.out != nil {
		fmt.Fprintln(l.t.out, line)
	}
	l.t.record(l.component, line)
}

// ring is a fixed-capacity circular buffer of trace lines.
type ring struct {
	lines []string
	next  int
	full  bool
}

func newRing(n int) *ring { return &ring{lines: make([]string, n)} }

func (r *ring) push(s string) {
	r.lines[r.next] = s
	r.next++
	if r.next == len(r.lines) {
		r.next = 0
		r.full = true
	}
}

func (r *ring) tail(n int) []string {
	var out []string
	if r.full {
		out = append(out, r.lines[r.next:]...)
		out = append(out, r.lines[:r.next]...)
	} else {
		out = append(out, r.lines[:r.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// ParseFlagsHelp returns a one-line usage string for -debug-flags.
func ParseFlagsHelp() string {
	s := make([]string, len(Flags))
	copy(s, Flags)
	sort.Strings(s)
	return "comma-separated debug flags (" + strings.Join(s, ",") + ") or all"
}
