package obs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gem5rtl/internal/sim"
)

func TestTracerUnknownFlagErrors(t *testing.T) {
	q := sim.NewEventQueue()
	if _, err := NewTracer(q, Config{Flags: "Cache,Bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestTracerFlagSelection(t *testing.T) {
	q := sim.NewEventQueue()
	tr, err := NewTracer(q, Config{Flags: "Cache, NoC"})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled("Cache") || !tr.Enabled("NoC") {
		t.Fatal("selected flags not enabled")
	}
	if tr.Enabled("CPU") {
		t.Fatal("unselected flag enabled")
	}
	if l := tr.Logger("CPU", "cpu0"); l != nil {
		t.Fatal("logger for disabled flag is not nil")
	}
	if l := tr.Logger("Cache", "cpu0.l1d"); l == nil {
		t.Fatal("logger for enabled flag is nil")
	}
}

func TestTracerAllEnablesEveryFlag(t *testing.T) {
	q := sim.NewEventQueue()
	tr, err := NewTracer(q, Config{Flags: "ALL"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Flags {
		if !tr.Enabled(f) {
			t.Fatalf("all did not enable %s", f)
		}
	}
}

func TestNilTracerAndLoggerAreOff(t *testing.T) {
	var tr *Tracer
	if tr.Enabled("Cache") {
		t.Fatal("nil tracer enabled")
	}
	if tr.Tail("x", 4) != nil {
		t.Fatal("nil tracer has a tail")
	}
	var l *Logger
	if l.On() {
		t.Fatal("nil logger on")
	}
	l.Logf("must not panic %d", 1)
}

func TestLoggerLineFormat(t *testing.T) {
	q := sim.NewEventQueue()
	var buf bytes.Buffer
	tr, err := NewTracer(q, Config{Flags: "Cache", Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	l := tr.Logger("Cache", "cpu0.l1d")
	q.ScheduleFunc("emit", 1234, func() { l.Logf("miss addr=%#x", 0x40) })
	q.Run()
	want := "1234: cpu0.l1d: miss addr=0x40\n"
	if buf.String() != want {
		t.Fatalf("line = %q, want %q", buf.String(), want)
	}
}

func TestTraceWindow(t *testing.T) {
	q := sim.NewEventQueue()
	var buf bytes.Buffer
	tr, err := NewTracer(q, Config{Flags: "Cache", Out: &buf, Start: 100, End: 200})
	if err != nil {
		t.Fatal(err)
	}
	l := tr.Logger("Cache", "c")
	for _, tk := range []sim.Tick{50, 100, 150, 200, 250} {
		tk := tk
		q.ScheduleFunc("emit", tk, func() { l.Logf("at %d", uint64(tk)) })
	}
	q.Run()
	out := buf.String()
	for _, want := range []string{"100: c: at 100", "150: c: at 150", "200: c: at 200"} {
		if !strings.Contains(out, want) {
			t.Fatalf("window missing %q:\n%s", want, out)
		}
	}
	for _, not := range []string{"at 50", "at 250"} {
		if strings.Contains(out, not) {
			t.Fatalf("line outside window emitted (%s):\n%s", not, out)
		}
	}
}

func TestRingTailKeepsMostRecent(t *testing.T) {
	q := sim.NewEventQueue()
	tr, err := NewTracer(q, Config{Flags: "Cache", RingSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	l := tr.Logger("Cache", "c")
	q.ScheduleFunc("emit", 1, func() {
		for i := 0; i < 10; i++ {
			l.Logf("line %d", i)
		}
	})
	q.Run()
	tail := tr.Tail("c", 3)
	if len(tail) != 3 {
		t.Fatalf("tail length = %d, want 3", len(tail))
	}
	for i, want := range []string{"line 7", "line 8", "line 9"} {
		if !strings.HasSuffix(tail[i], want) {
			t.Fatalf("tail[%d] = %q, want suffix %q", i, tail[i], want)
		}
	}
	if got := tr.Components(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("components = %v", got)
	}
}

func TestTailWithoutOutputWriter(t *testing.T) {
	// Rings fill even when no Out writer is attached — that is what feeds
	// watchdog diagnostics on otherwise-silent runs.
	q := sim.NewEventQueue()
	tr, err := NewTracer(q, Config{Flags: "all"})
	if err != nil {
		t.Fatal(err)
	}
	l := tr.Logger("NVDLA", "dla0")
	q.ScheduleFunc("emit", 7, func() { l.Logf("tile done") })
	q.Run()
	tail := tr.Tail("dla0", 8)
	if len(tail) != 1 || !strings.Contains(tail[0], "tile done") {
		t.Fatalf("tail = %v", tail)
	}
}

func TestParseFlagsHelpListsEveryFlag(t *testing.T) {
	help := ParseFlagsHelp()
	for _, f := range Flags {
		if !strings.Contains(help, f) {
			t.Fatalf("help %q missing flag %s", help, f)
		}
	}
}

func BenchmarkLoggerOff(b *testing.B) {
	var l *Logger // tracing off: the field every component holds
	for i := 0; i < b.N; i++ {
		if l.On() {
			l.Logf("addr=%#x", i)
		}
	}
}

func ExampleLogger() {
	q := sim.NewEventQueue()
	tr, _ := NewTracer(q, Config{Flags: "Cache", Out: &exampleWriter{}})
	l := tr.Logger("Cache", "cpu0.l1d")
	q.ScheduleFunc("emit", 500, func() { l.Logf("hit addr=%#x", 0x1000) })
	q.Run()
	// Output: 500: cpu0.l1d: hit addr=0x1000
}

type exampleWriter struct{}

func (exampleWriter) Write(p []byte) (int, error) { fmt.Print(string(p)); return len(p), nil }
