package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gem5rtl/internal/stats"
)

// TestCkptCountersAndHostStats checks the host-wide warm-start counters and
// their registry bridge: counts bumped through the Count* entry points are
// visible via CkptCacheCounts and through a registry built with
// RegisterHostStats.
func TestCkptCountersAndHostStats(t *testing.T) {
	h0, m0, s0, c0 := CkptCacheCounts()
	CountCkptHit()
	CountCkptHit()
	CountCkptMiss()
	CountCkptStale()
	CountCkptCorrupt()
	h, m, s, c := CkptCacheCounts()
	if h != h0+2 || m != m0+1 || s != s0+1 || c != c0+1 {
		t.Errorf("counters moved to (%d,%d,%d,%d) from (%d,%d,%d,%d), want +2/+1/+1/+1", h, m, s, c, h0, m0, s0, c0)
	}

	reg := stats.NewRegistry()
	RegisterHostStats(reg)
	for name, want := range map[string]float64{
		"host.ckpt.hits":    float64(h),
		"host.ckpt.misses":  float64(m),
		"host.ckpt.stale":   float64(s),
		"host.ckpt.corrupt": float64(c),
	} {
		got, ok := reg.Get(name)
		if !ok || got != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, got, ok, want)
		}
	}
	if _, ok := reg.Get("host.events"); !ok {
		t.Error("host.events not registered")
	}
}

// TestHostIntervalStreamerTelescopes checks the wall-clock streamer's
// telescoping-delta contract on a registry gauge: summing a column across
// the emitted records reproduces the end-to-start total, and the final
// cancellation record is always emitted.
func TestHostIntervalStreamerTelescopes(t *testing.T) {
	var val atomic.Int64
	reg := stats.NewRegistry()
	reg.Register("g", "test gauge", func() float64 { return float64(val.Load()) })

	var buf strings.Builder
	h := &HostIntervalStreamer{Reg: reg, W: &buf, Period: 5 * time.Millisecond,
		Annotate: func(rec *IntervalRecord) { rec.Extra = "note" }}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- h.Run(ctx) }()
	for i := 0; i < 4; i++ {
		time.Sleep(6 * time.Millisecond)
		val.Add(10)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no records emitted")
	}
	var sum float64
	for _, line := range lines {
		var rec IntervalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad record %q: %v", line, err)
		}
		sum += rec.Stats["g"]
		if rec.Extra == nil {
			t.Errorf("record %d lost its annotation", rec.Interval)
		}
	}
	if sum != float64(val.Load()) {
		t.Errorf("telescoped deltas sum to %v, gauge total is %v", sum, val.Load())
	}
}
