package psim

import (
	"fmt"
	"reflect"
	"testing"

	"gem5rtl/internal/sim"
)

const L = sim.Tick(1000)

type traceEntry struct {
	Name string
	At   sim.Tick
}

// buildToy wires the same toy machine serially (one queue, direct cross-
// component scheduling) or sharded (two queues, messages through eng):
// component A ticks every 100 on shard 0, component B ticks every 70 on
// shard 1, and every third B tick asks A's shard to run an event L ticks
// later — the minimum legal cross-shard delay.
func buildToy(qa, qb *sim.EventQueue, send func(apply func())) (traceA, traceB *[]traceEntry) {
	ta, tb := &[]traceEntry{}, &[]traceEntry{}
	var a, b *sim.Event
	a = sim.NewEvent("toy.a", func() {
		*ta = append(*ta, traceEntry{"toy.a", qa.Now()})
		if qa.Now() < 20_000 {
			qa.Schedule(a, qa.Now()+100)
		}
	})
	n := 0
	b = sim.NewEvent("toy.b", func() {
		*tb = append(*tb, traceEntry{"toy.b", qb.Now()})
		n++
		if n%3 == 0 {
			at := qb.Now() + L
			send(func() {
				qa.ScheduleOneShot("toy.x", at, func() {
					*ta = append(*ta, traceEntry{"toy.x", qa.Now()})
				})
			})
		}
		if qb.Now() < 20_000 {
			qb.Schedule(b, qb.Now()+70)
		}
	})
	qa.Schedule(a, 0)
	qb.Schedule(b, 0)
	return ta, tb
}

func runSerialToy(limit sim.Tick) ([]traceEntry, []traceEntry) {
	q := sim.NewEventQueue()
	ta, tb := buildToy(q, q, func(apply func()) { apply() })
	q.RunUntil(limit)
	return *ta, *tb
}

func runShardedToy(t *testing.T, limit sim.Tick) ([]traceEntry, []traceEntry, *Engine) {
	t.Helper()
	qa, qb := sim.NewEventQueue(), sim.NewEventQueue()
	eng := New([]*sim.EventQueue{qa, qb}, L)
	ta, tb := buildToy(qa, qb, func(apply func()) { eng.Send(1, 0, apply) })
	eng.RunEpochs(limit, nil)
	eng.CheckAligned()
	return *ta, *tb, eng
}

// TestShardedMatchesSerial is the toy-model version of the SoC differential
// test: per-component dispatch traces of the sharded engine must equal the
// serial engine's, including the cross-shard events.
func TestShardedMatchesSerial(t *testing.T) {
	for _, limit := range []sim.Tick{25_000, 21_500, 999} {
		t.Run(fmt.Sprint(limit), func(t *testing.T) {
			sa, sb := runSerialToy(limit)
			pa, pb, eng := runShardedToy(t, limit)
			if !reflect.DeepEqual(sa, pa) {
				t.Fatalf("shard-0 trace diverged:\nserial  %v\nsharded %v", sa, pa)
			}
			if !reflect.DeepEqual(sb, pb) {
				t.Fatalf("shard-1 trace diverged:\nserial  %v\nsharded %v", sb, pb)
			}
			if got := eng.Queue(0).Now(); got != limit {
				t.Fatalf("shard 0 stopped at %d, want %d", got, limit)
			}
		})
	}
}

// TestShardedDeterministic runs the sharded toy twice and requires identical
// traces — host scheduling must not leak into results.
func TestShardedDeterministic(t *testing.T) {
	a1, b1, _ := runShardedToy(t, 25_000)
	a2, b2, _ := runShardedToy(t, 25_000)
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) {
		t.Fatal("two sharded runs diverged")
	}
}

// TestAtBarrierStops checks the coordinator hook: it sees aligned epoch-end
// ticks and can end the run early.
func TestAtBarrierStops(t *testing.T) {
	qa, qb := sim.NewEventQueue(), sim.NewEventQueue()
	eng := New([]*sim.EventQueue{qa, qb}, L)
	buildToy(qa, qb, func(apply func()) { eng.Send(1, 0, apply) })
	var seen []sim.Tick
	eng.RunEpochs(50_000, func(now sim.Tick) bool {
		seen = append(seen, now)
		return len(seen) == 3
	})
	want := []sim.Tick{L - 1, 2*L - 1, 3*L - 1}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("barrier ticks = %v, want %v", seen, want)
	}
	if qa.Now() != 3*L-1 || qb.Now() != 3*L-1 {
		t.Fatalf("stopped at %d/%d, want %d", qa.Now(), qb.Now(), 3*L-1)
	}
}

// TestExitStopsAllShards checks that a queue-latched exit ends the whole
// run at the next barrier.
func TestExitStopsAllShards(t *testing.T) {
	qa, qb := sim.NewEventQueue(), sim.NewEventQueue()
	eng := New([]*sim.EventQueue{qa, qb}, L)
	buildToy(qa, qb, func(apply func()) { eng.Send(1, 0, apply) })
	qa.ScheduleOneShot("toy.exit", 2_500, func() { qa.ExitSimLoop("toy exit") })
	eng.RunEpochs(50_000, nil)
	if qa.ExitReason() != "toy exit" {
		t.Fatalf("exit reason = %q", qa.ExitReason())
	}
	if qb.Now() >= 50_000 {
		t.Fatalf("shard 1 ran to the limit despite shard 0 exiting (now=%d)", qb.Now())
	}
}

func TestEpochEnd(t *testing.T) {
	cases := []struct{ t, want sim.Tick }{
		{0, 999}, {1, 999}, {999, 999}, {1000, 1999}, {1500, 1999}, {1999, 1999}, {2000, 2999},
	}
	for _, c := range cases {
		if got := EpochEnd(c.t, L); got != c.want {
			t.Errorf("EpochEnd(%d) = %d, want %d", c.t, got, c.want)
		}
	}
}
