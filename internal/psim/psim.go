// Package psim is the bulk-synchronous sharded simulation engine: it runs
// one sim.EventQueue per shard, each on its own goroutine, advancing all
// shards in lockstep epochs bounded by a conservative lookahead — the
// minimum simulated latency any event on one shard needs before it can
// affect another shard (in the SoC partition, the memory crossbar's
// traversal latency). Within an epoch shards dispatch independently;
// cross-shard traffic is exchanged only at epoch barriers, as messages on
// deterministic per-(source, destination) FIFO links.
//
// The engine is conservative and deterministic by construction:
//
//   - An event dispatched at tick t on shard A can only influence shard B at
//     tick >= t + lookahead, which is strictly beyond the epoch both were
//     running. Messages applied at the barrier therefore always land in the
//     receiving shard's future — no shard ever sees a cause after its effect.
//   - Messages from one source apply in send order (the source shard's
//     dispatch order, which equals the serial engine's dispatch order
//     restricted to that shard), and receiving-side structures order
//     same-tick arrivals by the sender's dispatch stamp (sim.Stamp), so the
//     merged outcome is independent of both host scheduling and the apply
//     order across sources.
//
// Together with the engine-independent event arbitration order in package
// sim — (when, priority, name rank, sequence) — this makes a sharded run
// dispatch exactly the events a serial run dispatches, in an order whose
// observable effects are identical, which is what keeps statistics, state
// hashes and checkpoints bit-identical across engines and shard counts.
// DESIGN.md's "Parallel simulation" section walks through the argument.
package psim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gem5rtl/internal/sim"
)

// Engine coordinates the shard queues and their barrier-exchanged links.
type Engine struct {
	queues    []*sim.EventQueue
	lookahead sim.Tick

	// links[src][dst] is the FIFO of cross-shard messages sent by shard src
	// to shard dst during the current epoch. Written only by shard src's
	// goroutine (during the run phase), drained only by shard dst's (during
	// the apply phase); the epoch barriers order the two.
	links [][][]func()

	// target is the current epoch's run limit, published to the workers by
	// the epoch-start barrier.
	target sim.Tick
	// quit tells workers to return; published like target.
	quit bool
}

// New creates an engine over the given shard queues (shard 0 first). The
// lookahead is the minimum simulated delay of any cross-shard interaction
// and must be positive; epochs span [k*lookahead, (k+1)*lookahead).
func New(queues []*sim.EventQueue, lookahead sim.Tick) *Engine {
	if len(queues) == 0 {
		panic("psim: no shard queues")
	}
	if lookahead <= 0 {
		panic("psim: lookahead must be positive")
	}
	n := len(queues)
	links := make([][][]func(), n)
	for i := range links {
		links[i] = make([][]func(), n)
	}
	return &Engine{queues: queues, lookahead: lookahead, links: links}
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.queues) }

// Queue returns shard i's event queue.
func (e *Engine) Queue(i int) *sim.EventQueue { return e.queues[i] }

// Lookahead returns the epoch length.
func (e *Engine) Lookahead() sim.Tick { return e.lookahead }

// Send enqueues a cross-shard message: apply runs on shard dst's goroutine
// at the next epoch barrier. Must be called from shard src's goroutine
// during the run phase (i.e. from an event handler on shard src's queue);
// messages from one source are applied in send order.
func (e *Engine) Send(src, dst int, apply func()) {
	e.links[src][dst] = append(e.links[src][dst], apply)
}

// applyInbound drains every source's link into shard dst, in source order.
// Only shard dst's state is touched, so all shards apply concurrently.
func (e *Engine) applyInbound(dst int) {
	for src := range e.links {
		l := e.links[src][dst]
		for i, fn := range l {
			fn()
			l[i] = nil
		}
		e.links[src][dst] = l[:0]
	}
}

// anyExit reports whether any shard queue has latched an exit.
func (e *Engine) anyExit() bool {
	for _, q := range e.queues {
		if q.ExitReason() != "" {
			return true
		}
	}
	return false
}

// EpochEnd returns the last tick of the epoch containing t: the aligned
// point a run detecting completion at t must continue to so that a sharded
// run (which can only observe completion at barriers) and a serial run end
// in identical states.
func EpochEnd(t, lookahead sim.Tick) sim.Tick {
	return (t/lookahead+1)*lookahead - 1
}

// RunEpochs drives every shard in bulk-synchronous epochs until all queues
// reach limit, any queue latches an exit (sim.EventQueue.ExitSimLoop), or
// atBarrier returns true. atBarrier (nil = never stop early) runs on the
// caller's goroutine between epochs, with every shard quiescent and all
// cross-shard messages applied — the place to aggregate completion state
// that no single shard can see, to hook watchdog checks, and to decide
// stopping; now is the aligned current tick, the last tick of the epoch
// just run. On return all shards have stopped and their effects are visible
// to the caller.
func (e *Engine) RunEpochs(limit sim.Tick, atBarrier func(now sim.Tick) bool) {
	n := len(e.queues)
	e.quit = false
	// Three reusable barriers over n workers + the coordinator: epoch start
	// (publishes target/quit), run done (orders Send against applyInbound),
	// applies done (quiesces the machine for the coordinator's decisions).
	start, ran, applied := newBarrier(n+1), newBarrier(n+1), newBarrier(n+1)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := e.queues[i]
			for {
				start.wait()
				if e.quit {
					return
				}
				q.RunUntil(e.target)
				ran.wait()
				e.applyInbound(i)
				applied.wait()
			}
		}(i)
	}
	for {
		now := e.queues[0].Now()
		if now >= limit || e.anyExit() {
			break
		}
		// After an epoch the queues rest ON its last tick, so the next
		// target comes from now+1 — EpochEnd(now) would be now itself.
		tgt := EpochEnd(now+1, e.lookahead)
		if tgt > limit {
			tgt = limit
		}
		e.target = tgt
		start.wait()
		ran.wait()
		applied.wait()
		if atBarrier != nil && atBarrier(e.queues[0].Now()) {
			break
		}
	}
	e.quit = true
	start.wait()
	wg.Wait()
}

// CheckAligned panics unless every shard sits at the same tick — the
// invariant checkpoint saves rely on. Exit paths (context cancellation,
// watchdog trips) legitimately leave shards misaligned, which is why saving
// from an errored run is refused rather than silently wrong.
func (e *Engine) CheckAligned() {
	now := e.queues[0].Now()
	for i, q := range e.queues[1:] {
		if q.Now() != now {
			panic(fmt.Sprintf("psim: shard %d at tick %d, shard 0 at %d — not at an epoch barrier",
				i+1, q.Now(), now))
		}
	}
}

// barrier is a reusable sense-reversing spin barrier. Spinning (with a
// bounded-backoff Gosched) rather than parking matters here: epochs are
// short (a few microseconds of host work for a 2-cycle-lookahead SoC), so
// futex-style sleep/wake on every epoch would dominate the speedup the
// shards buy. The atomics double as the happens-before edges that publish
// each phase's writes (targets, link slices, queue state) to the next —
// both for the memory model and for the race detector.
type barrier struct {
	members int32
	count   atomic.Int32
	gen     atomic.Uint32
}

func newBarrier(members int) *barrier {
	return &barrier{members: int32(members)}
}

func (b *barrier) wait() {
	g := b.gen.Load()
	if b.count.Add(1) == b.members {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for spins := 0; b.gen.Load() == g; spins++ {
		if spins%1024 == 1023 {
			runtime.Gosched()
		}
	}
}
