// Command sweepctl is the sweepd client and its in-process twin. It submits
// RunSpec batches to a running server, watches their progress, and fetches
// canonical results — or runs the same batch locally through
// experiments.Runner, producing a byte-identical results document, so a
// served sweep can be diffed against an in-process one:
//
//	sweepctl grid | sweepctl submit -addr http://localhost:8080 -wait > served.json
//	sweepctl grid | sweepctl local > local.json
//	diff served.json local.json
//
// Subcommands:
//
//	grid           print a spec batch (the 12-config NVDLA grid by default)
//	submit         POST a batch from stdin; -wait polls and prints results
//	status         print one job's status
//	results        print one job's canonical results
//	watch          stream one job's live JSONL progress
//	cancel         cancel a job (queued points are skipped)
//	local          run a batch from stdin in-process and print results
//	server-status  print server-wide status
//	metrics        dump the Prometheus text-format metrics plane
//	top            render the fleet's per-component attribution table
//	healthz        probe server health (exit 1 while draining/unhealthy)
//	quarantine     list quarantined (poison) points and corrupt store files
//	unquarantine   clear a point's quarantine record so it may simulate again
//	drain          stop the server's intake and let the queue finish
//
// When the server sheds load (429) or is draining (503), the returned error
// echoes the Retry-After hint so scripts know how long to back off.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/prof"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/sweepd"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "grid":
		err = cmdGrid(args)
	case "submit":
		err = cmdSubmit(args)
	case "status":
		err = cmdJobGet(args, "", "status")
	case "results":
		err = cmdJobGet(args, "/results", "results")
	case "watch":
		err = cmdJobGet(args, "/stream", "watch")
	case "cancel":
		err = cmdCancel(args)
	case "local":
		err = cmdLocal(args)
	case "server-status":
		err = cmdServer(args, http.MethodGet, "/v1/status", "server-status")
	case "metrics":
		err = cmdServer(args, http.MethodGet, "/v1/metrics", "metrics")
	case "top":
		err = cmdTop(args)
	case "healthz":
		err = cmdServer(args, http.MethodGet, "/v1/healthz", "healthz")
	case "quarantine":
		err = cmdServer(args, http.MethodGet, "/v1/quarantine", "quarantine")
	case "unquarantine":
		err = cmdUnquarantine(args)
	case "drain":
		err = cmdServer(args, http.MethodPost, "/v1/drain", "drain")
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sweepctl {grid|submit|status|results|watch|cancel|local|server-status|metrics|top|healthz|quarantine|unquarantine|drain} [flags]")
	os.Exit(2)
}

// cmdGrid prints a spec batch: by default the 12-config NVDLA grid
// (sanity3, one accelerator, {DDR4-1ch, DDR4-4ch, HBM} × {1, 16, 64, 240}).
func cmdGrid(args []string) error {
	fs := flag.NewFlagSet("grid", flag.ExitOnError)
	workload := fs.String("workload", "sanity3", "workload for every point")
	n := fs.Int("n", 1, "accelerator instances per point")
	scale := fs.Int("scale", 32, "trace footprint divisor")
	mems := fs.String("mems", "DDR4-1ch,DDR4-4ch,HBM", "comma-separated memory technologies")
	inflights := fs.String("inflights", "1,16,64,240", "comma-separated in-flight caps")
	fs.Parse(args)

	p := experiments.DSEParams{Scale: *scale, Limit: 8 * sim.Second}
	var specs []experiments.RunSpec
	for _, infStr := range strings.Split(*inflights, ",") {
		var inf int
		if _, err := fmt.Sscanf(strings.TrimSpace(infStr), "%d", &inf); err != nil {
			return fmt.Errorf("bad -inflights entry %q", infStr)
		}
		for _, mem := range strings.Split(*mems, ",") {
			spec := p.Spec(*workload, *n, strings.TrimSpace(mem), inf)
			if err := spec.Validate(); err != nil {
				return err
			}
			specs = append(specs, spec)
		}
	}
	buf, err := json.MarshalIndent(specs, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(buf))
	return nil
}

// readSpecs parses a strict spec batch from stdin.
func readSpecs() ([]experiments.RunSpec, error) {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		return nil, err
	}
	return experiments.ParseSpecs(data)
}

// cmdSubmit posts a batch; with -wait it polls to completion and prints the
// canonical results document (byte-identical to `sweepctl local`).
func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "sweepd base URL")
	client := fs.String("client", "", "client name for quota accounting")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	wait := fs.Bool("wait", false, "poll until the job finishes, then print its results")
	fs.Parse(args)

	specs, err := readSpecs()
	if err != nil {
		return err
	}
	body, err := json.Marshal(sweepd.SubmitRequest{Client: *client, Priority: *priority, Specs: specs})
	if err != nil {
		return err
	}
	resp, err := http.Post(*addr+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return httpError("submit", resp)
	}
	var sub sweepd.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return err
	}
	if !*wait {
		fmt.Printf("%s points=%d cached=%d\n", sub.ID, sub.Points, sub.Cached)
		return nil
	}
	for {
		st, err := fetchStatus(*addr, sub.ID)
		if err != nil {
			return err
		}
		if st.State != sweepd.JobRunning {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	return printBody(*addr + "/v1/jobs/" + sub.ID + "/results")
}

func fetchStatus(addr, id string) (sweepd.JobStatus, error) {
	var st sweepd.JobStatus
	resp, err := http.Get(addr + "/v1/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, httpError("status", resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// cmdJobGet streams one job GET endpoint ("" status, "/results", "/stream")
// to stdout.
func cmdJobGet(args []string, suffix, name string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "sweepd base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sweepctl %s [-addr URL] <job-id>", name)
	}
	return printBody(*addr + "/v1/jobs/" + fs.Arg(0) + suffix)
}

func cmdCancel(args []string) error {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "sweepd base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sweepctl cancel [-addr URL] <job-id>")
	}
	req, err := http.NewRequest(http.MethodDelete, *addr+"/v1/jobs/"+fs.Arg(0), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("cancel", resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// cmdLocal runs a batch in-process through experiments.Runner and prints the
// canonical results document — the reference a served sweep is diffed
// against.
func cmdLocal(args []string) error {
	fs := flag.NewFlagSet("local", flag.ExitOnError)
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = all CPUs)")
	fs.Parse(args)
	specs, err := readSpecs()
	if err != nil {
		return err
	}
	results, err := experiments.Runner{Workers: *parallel}.Sweep(context.Background(), specs)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(sweepd.EncodeResults(sweepd.FromRunnerResults(results)))
	return err
}

func cmdServer(args []string, method, path, name string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "sweepd base URL")
	fs.Parse(args)
	req, err := http.NewRequest(method, *addr+path, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(name, resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// printBody GETs a URL and copies the body to stdout (streaming, so `watch`
// follows a live JSONL stream).
func printBody(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("get", resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// cmdTop fetches /v1/metrics and renders the fleet view an operator wants
// first: the queue/worker gauges on one line, then the aggregated
// per-component attribution table sorted by host-time share (populated only
// when the server runs with -self-profile).
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "sweepd base URL")
	k := fs.Int("k", 15, "attribution rows to show (0 = all)")
	fs.Parse(args)

	resp, err := http.Get(*addr + "/v1/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("top", resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	gauges, rep := parseMetrics(string(body))
	fmt.Printf("pending=%g running=%g retrying=%g quarantined=%g workers busy=%g/%g util=%.0f%%\n",
		gauges["sweepd_points_pending"], gauges["sweepd_points_running"],
		gauges["sweepd_points_retrying"], gauges["sweepd_quarantined"],
		gauges["sweepd_workers_busy"], gauges["sweepd_workers_live"],
		gauges["sweepd_workers_utilization"]*100)
	if len(rep.Samples) == 0 {
		fmt.Println("no attribution samples (is the server running with -self-profile?)")
		return nil
	}
	fmt.Println("aggregated attribution (share of sampled host time):")
	return rep.WriteTable(os.Stdout, *k)
}

// parseMetrics reads a Prometheus text-format body back into the unlabelled
// gauges (keyed by name with the metric prefix stripped) and the selfprof
// attribution report. It understands exactly the subset sweepd emits.
func parseMetrics(body string) (map[string]float64, *prof.Report) {
	gauges := map[string]float64{}
	byOwner := map[[2]string]*prof.Sample{}
	rep := &prof.Report{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		id, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		brace := strings.IndexByte(id, '{')
		if brace < 0 {
			gauges[strings.TrimPrefix(id, sweepd.MetricsPrefix)] = val
			continue
		}
		name := strings.TrimPrefix(id[:brace], sweepd.MetricsPrefix)
		if name != "selfprof_events_total" && name != "selfprof_seconds_total" {
			continue
		}
		labels := parseLabels(id[brace:])
		key := [2]string{labels["component"], labels["kind"]}
		s := byOwner[key]
		if s == nil {
			s = &prof.Sample{Component: key[0], Kind: key[1]}
			byOwner[key] = s
		}
		if name == "selfprof_events_total" {
			s.Events = uint64(val)
		} else {
			s.HostNS = int64(val * 1e9)
		}
	}
	for _, s := range byOwner {
		rep.Samples = append(rep.Samples, *s)
	}
	return gauges, rep
}

// parseLabels decodes a {k="v",...} label set (quoted-string values, as the
// server emits them).
func parseLabels(s string) map[string]string {
	out := map[string]string{}
	s = strings.TrimPrefix(s, "{")
	s = strings.TrimSuffix(s, "}")
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return out
		}
		key := s[:eq]
		rest := s[eq+1:]
		val, err := strconv.Unquote(unquotePrefix(rest))
		if err != nil {
			return out
		}
		out[key] = val
		consumed := len(unquotePrefix(rest))
		s = rest[consumed:]
		s = strings.TrimPrefix(s, ",")
	}
	return out
}

// unquotePrefix returns the leading Go-quoted string of s (including both
// quotes), honouring backslash escapes.
func unquotePrefix(s string) string {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			return s[:i+1]
		}
	}
	return s
}

// cmdUnquarantine clears one point's quarantine record by fingerprint; the
// next submission of the point simulates it with a fresh attempt budget.
func cmdUnquarantine(args []string) error {
	fs := flag.NewFlagSet("unquarantine", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8080", "sweepd base URL")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sweepctl unquarantine [-addr URL] <fingerprint>")
	}
	req, err := http.NewRequest(http.MethodDelete, *addr+"/v1/quarantine/"+fs.Arg(0), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError("unquarantine", resp)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// httpError decodes the server's JSON error body into a CLI error. A shed
// (429) or draining (503) response carries a Retry-After hint, echoed so
// scripts and humans know how long to back off before resubmitting.
func httpError(what string, resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&e)
	if e.Error == "" {
		e.Error = resp.Status
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		return fmt.Errorf("%s: %s (retry after %ss)", what, e.Error, ra)
	}
	return fmt.Errorf("%s: %s", what, e.Error)
}
