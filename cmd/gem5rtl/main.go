// Command gem5rtl is the general full-system simulation runner: it builds
// the Table 1 SoC with the selected memory technology and optional RTL
// devices, runs a guest workload, and dumps gem5-style statistics.
//
// Examples:
//
//	gem5rtl -cores 1 -mem DDR4-4ch -program sort -n 200
//	gem5rtl -mem HBM -nvdla 4 -inflight 64 -dla-workload sanity3
//	gem5rtl -cores 1 -pmu -program stream
//
// A run can be suspended and resumed: -checkpoint-at stops at a simulated
// time and serialises the full system; -restore (with the same configuration
// flags) resumes it, producing output identical to the uninterrupted run:
//
//	gem5rtl -cores 1 -program sort -checkpoint-at 5ms -checkpoint-out ck.bin
//	gem5rtl -cores 1 -program sort -restore ck.bin
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/guard"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/pmu"
	"gem5rtl/internal/port"
	"gem5rtl/internal/prof"
	"gem5rtl/internal/rtl"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/soc"
	"gem5rtl/internal/trace"
	"gem5rtl/internal/workload"
)

// fatalCleanup holds flush/close hooks fatal runs (LIFO) before exiting.
// os.Exit skips deferred closers, so without this an aborted run — a watchdog
// trip, a blown -timeout — would leave truncated, unparseable -trace-out and
// -stats-out files.
var fatalCleanup []func()

// outFile resolves an output flag: empty means stderr, anything else is
// created (the returned closer is a no-op for stderr). The closer is also
// registered with fatalCleanup so a fatal exit still closes the file.
func outFile(path string) (io.Writer, func(), error) {
	if path == "" {
		return os.Stderr, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	closer := func() { f.Close() }
	fatalCleanup = append(fatalCleanup, closer)
	return f, closer, nil
}

func main() {
	cores := flag.Int("cores", 8, "number of CPU cores")
	memName := flag.String("mem", "DDR4-4ch", "memory: ideal, DDR4-1ch/2ch/4ch, GDDR5, HBM")
	program := flag.String("program", "sort", "guest program: sort, loop, stream, none")
	n := flag.Int("n", 200, "workload size parameter")
	withPMU := flag.Bool("pmu", false, "attach the PMU RTL model to core 0")
	rtlEngine := flag.String("rtl-engine", "", "RTL simulation engine: "+engineChoices()+" (default bytecode; results are engine-independent)")
	nvdlas := flag.Int("nvdla", 0, "number of NVDLA accelerator instances")
	inflight := flag.Int("inflight", 64, "per-NVDLA max in-flight memory requests")
	shards := flag.Int("shards", 0, "parallel simulation shards (0/1 = serial; needs -nvdla; results are shard-count-independent)")
	dlaWorkload := flag.String("dla-workload", "sanity3", "NVDLA trace: sanity3 or googlenet")
	dlaScale := flag.Int("dla-scale", 8, "NVDLA trace footprint divisor")
	scratchpad := flag.Bool("scratchpad", false, "hook NVDLA SRAMIF to an on-chip scratchpad (paper §4.2 extension)")
	limitMs := flag.Int("limit-ms", 2000, "simulated time limit in milliseconds")
	timeout := flag.Duration("timeout", 0, "host wall-clock budget for the run (0 = none)")
	ckptAt := flag.Duration("checkpoint-at", 0, "run to this simulated time (pick one before the run completes), save a checkpoint, and exit")
	ckptOut := flag.String("checkpoint-out", "gem5rtl.ckpt", "checkpoint file written by -checkpoint-at")
	restorePath := flag.String("restore", "", "resume from a checkpoint file; other flags must match the checkpointed configuration")
	watchdog := flag.Bool("watchdog", false, "attach a liveness watchdog: abort with a diagnostic dump instead of idling to the time limit on a hang")
	checkPorts := flag.Bool("check-ports", false, "enforce the timing-port handshake protocol on every bound link (panics on a violation)")
	debugFlags := flag.String("debug-flags", "", obs.ParseFlagsHelp())
	debugStart := flag.Duration("debug-start", 0, "start of the trace window in simulated time")
	debugEnd := flag.Duration("debug-end", 0, "end of the trace window in simulated time (0 = no end)")
	debugFile := flag.String("debug-file", "", "write trace lines to this file instead of stderr")
	statsInterval := flag.Duration("stats-interval", 0, "dump per-interval stat deltas every this much simulated time (0 = off)")
	statsOut := flag.String("stats-out", "", "interval-stats output file (default stderr)")
	statsFormat := flag.String("stats-format", "jsonl", "interval-stats format: jsonl or csv")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (open in Perfetto) of packet lifetimes to this file")
	latHist := flag.Bool("lat-hist", false, "attach packet-latency taps and report per-link histograms in the stats dump")
	selfProf := flag.Int("self-profile", 0, "attach the event-kernel self-profiler with this clock-read cadence in dispatches (64 is a good default; 0 = off)")
	selfProfOut := flag.String("self-profile-out", "", "self-profile export file: .pb.gz = pprof protobuf, else folded stacks (default: print an attribution table to stderr)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	hostMetrics := flag.String("host-metrics", "", "write periodic host runtime metrics (JSONL) to this file")
	flag.Parse()

	if *checkPorts {
		port.Checking = true
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := soc.DefaultConfig()
	cfg.Cores = *cores
	cfg.Memory = *memName
	cfg.WithPMU = *withPMU
	cfg.RTLEngine = rtl.Engine(*rtlEngine)
	cfg.NVDLAs = *nvdlas
	cfg.NVDLAMaxInflight = *inflight
	cfg.NVDLAScratchpad = *scratchpad
	cfg.Shards = *shards
	s, err := soc.Build(cfg)
	if err != nil {
		fatal(err)
	}
	if *selfProf > 0 {
		s.AttachSelfProfiler(*selfProf)
	}

	if *pprofAddr != "" {
		stopPprof, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		defer stopPprof()
		fmt.Fprintf(os.Stderr, "# pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *hostMetrics != "" {
		w, closeW, err := outFile(*hostMetrics)
		if err != nil {
			fatal(err)
		}
		defer closeW()
		mon := &obs.HostMonitor{W: w}
		mon.Start()
		defer mon.Stop()
	}

	// Latency taps must be interposed before a restore: their histograms and
	// in-flight stamps travel in the checkpoint stream, so a checkpoint
	// written with -lat-hist/-trace-out must be resumed with the same flags.
	var chrome *obs.ChromeTrace
	if *traceOut != "" {
		chrome = obs.NewChromeTrace()
	}
	if *latHist || chrome != nil {
		s.AttachLatencyProfile(chrome)
	}
	if *debugFlags != "" {
		out, closeOut, err := outFile(*debugFile)
		if err != nil {
			fatal(err)
		}
		defer closeOut()
		if _, err := s.AttachTracer(obs.Config{
			Flags: *debugFlags,
			Start: sim.Tick(debugStart.Nanoseconds()) * sim.Nanosecond,
			End:   sim.Tick(debugEnd.Nanoseconds()) * sim.Nanosecond,
			Out:   out,
		}); err != nil {
			fatal(err)
		}
	}

	restoring := *restorePath != ""

	// A restored run performs none of the live-run setup below: program
	// text, core state, accelerator progress and PMU registers all come from
	// the checkpoint. Only host-side closures (the exit handler) are
	// re-registered.
	if *withPMU && !restoring {
		s.PMU.Start()
		host := experiments.NewAXIHost(s.Queue)
		port.Bind(host.Port(), s.PMU.CPUPort(0))
		// Enable commit lines 0-3, the L1D miss line and the cycle line.
		host.Write(pmu.RegEnable, 0x3F)
	}

	var src string
	switch *program {
	case "sort":
		src = workload.SortBenchmark(workload.SortParams{N: *n, SleepUs: 100})
	case "loop":
		src = workload.SimpleLoop(*n)
	case "stream":
		src = workload.MemoryStream(0x400000, *n)
	case "none":
	default:
		fatal(fmt.Errorf("unknown program %q", *program))
	}
	running := 0
	onExit := func(int64) {
		running--
		if running == 0 && *nvdlas == 0 {
			s.Queue.ExitSimLoop("program exit")
		}
	}
	if src != "" && !restoring {
		if err := s.LoadProgram(0, src); err != nil {
			fatal(err)
		}
		running++
		s.Cores[0].OnExit = onExit
		s.StartCores(0)
	}

	if !restoring {
		for i := 0; i < *nvdlas; i++ {
			s.NVDLAs[i].Start()
			tr, err := trace.Scaled(*dlaWorkload, uint64(i+1)<<32, *dlaScale)
			if err != nil {
				fatal(err)
			}
			s.PlayTrace(i, tr)
		}
	}

	if restoring {
		tick, err := s.RestoreFile(*restorePath)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# restored %s at %.3f ms simulated\n",
			*restorePath, float64(tick)/float64(sim.Millisecond))
		if src != "" {
			if exited, _ := s.Cores[0].Exited(); !exited {
				running++
			}
			s.Cores[0].OnExit = onExit
		}
	}

	if *watchdog {
		s.AttachWatchdog(guard.Config{})
	}

	var dumper *obs.IntervalDumper
	if *statsInterval > 0 {
		w, closeW, err := outFile(*statsOut)
		if err != nil {
			fatal(err)
		}
		defer closeW()
		d, err := obs.NewIntervalDumper(s.Queue, s.Stats, w,
			sim.Tick(statsInterval.Nanoseconds())*sim.Nanosecond, *statsFormat)
		if err != nil {
			fatal(err)
		}
		d.Start()
		dumper = d
	}
	// flushObs drains the host-side observability sinks; run it before a
	// checkpoint save (the interval event is host-side and not serialisable)
	// and before the final stats dump. It is idempotent and registered with
	// fatalCleanup, so even an aborted run (watchdog trip, blown -timeout)
	// leaves a complete, parseable trace and interval-stats file behind.
	flushed := false
	flushObs := func() error {
		if flushed {
			return nil
		}
		flushed = true
		if dumper != nil {
			if err := dumper.Close(); err != nil {
				return err
			}
		}
		if chrome != nil {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := chrome.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "# %d spans written to %s (open in Perfetto)\n",
				chrome.Spans(), *traceOut)
		}
		return nil
	}
	fatalCleanup = append(fatalCleanup, func() { _ = flushObs() })

	limit := sim.Tick(*limitMs) * sim.Millisecond
	if *ckptAt > 0 {
		at := sim.Tick(ckptAt.Nanoseconds()) * sim.Nanosecond
		if *nvdlas > 0 {
			if _, _, err := s.RunNVDLAPhase(ctx, at); err != nil {
				fatal(err)
			}
		} else {
			stop := s.Queue.WatchContext(ctx, 0)
			s.Queue.RunUntil(at)
			stop()
			if err := ctx.Err(); err != nil {
				fatal(err)
			}
		}
		if s.Watchdog != nil {
			if err := s.Watchdog.Err(); err != nil {
				fatal(err)
			}
			// The check event is host-side and not serialisable.
			s.Watchdog.Stop()
		}
		if err := flushObs(); err != nil {
			fatal(err)
		}
		if err := s.SaveFile(*ckptOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# checkpoint at %.3f ms simulated written to %s\n",
			float64(s.Queue.Now())/float64(sim.Millisecond), *ckptOut)
		return
	}
	if *nvdlas > 0 {
		done, err := s.RunUntilNVDLAsDoneCtx(ctx, limit)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# accelerators finished at %.3f ms simulated\n",
			float64(done)/float64(sim.Millisecond))
	} else {
		stop := s.Queue.WatchContext(ctx, 0)
		s.Queue.RunUntil(limit)
		stop()
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
	}
	if s.Watchdog != nil {
		if err := s.Watchdog.Err(); err != nil {
			fatal(err)
		}
	}

	if err := flushObs(); err != nil {
		fatal(err)
	}
	fmt.Printf("# simulated %.3f ms (%d events)\n",
		float64(s.Queue.Now())/float64(sim.Millisecond), s.Dispatched())
	s.Stats.Dump(os.Stdout)
	if rep := prof.FromQueues(s.ShardQueues...); rep != nil {
		if err := rep.Export(*selfProfOut, os.Stderr); err != nil {
			fatal(err)
		}
		if *selfProfOut != "" {
			fmt.Fprintf(os.Stderr, "# self-profile written to %s\n", *selfProfOut)
		}
	}
}

// engineChoices renders the registered RTL engines for flag help.
func engineChoices() string {
	names := make([]string, 0, 2)
	for _, e := range rtl.Engines() {
		names = append(names, string(e))
	}
	return strings.Join(names, ", ")
}

func fatal(err error) {
	for i := len(fatalCleanup) - 1; i >= 0; i-- {
		fatalCleanup[i]()
	}
	fmt.Fprintln(os.Stderr, "gem5rtl:", err)
	os.Exit(1)
}
