package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles the gem5rtl command into dir and returns its path.
func buildBinary(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "gem5rtl")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestInterruptedRunLeavesValidOutputFiles is the regression test for the
// truncated-trace bug: a run aborted mid-flight (here by a blown host
// -timeout; a watchdog trip takes the same fatal path) must still flush and
// close its -trace-out and -stats-out writers, leaving a parseable Chrome
// trace JSON and well-formed interval-stats JSONL rather than a truncated
// array.
func TestInterruptedRunLeavesValidOutputFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	dir := t.TempDir()
	bin := buildBinary(t, dir)
	tracePath := filepath.Join(dir, "trace.json")
	statsPath := filepath.Join(dir, "stats.jsonl")

	// A full-scale googlenet run takes far longer than the 150ms budget, so
	// the run is reliably cut off mid-flight.
	cmd := exec.Command(bin,
		"-nvdla", "1", "-dla-workload", "googlenet", "-dla-scale", "1",
		"-cores", "1", "-program", "none", "-limit-ms", "60000",
		"-timeout", "150ms",
		"-trace-out", tracePath,
		"-stats-interval", "100us", "-stats-out", statsPath)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected the run to be interrupted by -timeout, but it exited cleanly:\n%s", out)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("running gem5rtl: %v\n%s", err, out)
	}

	traceBytes, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("interrupted run left no trace file: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBytes, &doc); err != nil {
		t.Fatalf("interrupted run's -trace-out is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("interrupted run's trace has no events; output:\n%s", out)
	}

	statsBytes, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatalf("interrupted run left no interval-stats file: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(statsBytes)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("interrupted run's interval-stats file is empty")
	}
	for i, line := range lines {
		var row map[string]any
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("interval-stats line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
	}
}
