// Command rtlsim is gem5rtl's standalone HDL simulator — the "Verilator /
// GHDL" entry point of the toolflow. It compiles a Verilog (.v/.sv) or VHDL
// (.vhd/.vhdl) source file into a cycle-accurate model, optionally drives
// constant input values, simulates N cycles, and prints the final outputs.
// With -vcd it writes a waveform file; with -checkpoint/-restore it saves
// and resumes model state.
//
// Examples:
//
//	rtlsim -top counter -set en=1 -cycles 100 design.v
//	rtlsim -top bitonic8 -set in_lo=0x04030201 -vcd waves.vcd sorter.vhd
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gem5rtl/internal/obs"
	"gem5rtl/internal/prof"
	"gem5rtl/internal/rtl"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/verilog"
	"gem5rtl/internal/vhdl"

	// Link in the optimizing bytecode engine for -rtl-engine=bytecode.
	_ "gem5rtl/internal/rtlc"
)

func main() {
	top := flag.String("top", "", "top module/entity name (required)")
	cycles := flag.Int("cycles", 10, "clock cycles to simulate")
	vcdPath := flag.String("vcd", "", "write a VCD waveform to this file")
	ckptPath := flag.String("checkpoint", "", "save model state here after the run")
	restPath := flag.String("restore", "", "restore model state from here before the run")
	selfProf := flag.Int("self-profile", 0, "profile the model's comb/seq/memw phases with this clock-read cadence (64 is a good default; 0 = off)")
	selfProfOut := flag.String("self-profile-out", "", "self-profile export file: .pb.gz = pprof protobuf, else folded stacks (default: print a table to stderr)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	engineName := flag.String("rtl-engine", "", "simulation engine: closure or bytecode (default closure; results are engine-independent)")
	shards := flag.Int("shards", 0, "parallel simulation shards (a standalone model is one shard; values above 1 are rejected — shard full-SoC runs with gem5rtl/nvdla-dse)")
	var sets multiFlag
	flag.Var(&sets, "set", "drive input: name=value (repeatable)")
	flag.Parse()

	if *pprofAddr != "" {
		stop, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	if *shards > 1 {
		fatal(fmt.Errorf("a standalone RTL model is a single shard; -shards=%d applies to full-SoC runs (use gem5rtl or nvdla-dse)", *shards))
	}
	if flag.NArg() != 1 || *top == "" {
		fmt.Fprintln(os.Stderr, "usage: rtlsim -top NAME [flags] design.{v,sv,vhd,vhdl}")
		flag.PrintDefaults()
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}

	engine, err := rtl.ParseEngine(*engineName)
	if err != nil {
		fatal(err)
	}
	var model *rtl.Model
	switch {
	case strings.HasSuffix(path, ".v") || strings.HasSuffix(path, ".sv"):
		model, err = verilog.CompileEngine(string(src), *top, nil, engine)
	case strings.HasSuffix(path, ".vhd") || strings.HasSuffix(path, ".vhdl"):
		model, err = vhdl.CompileEngine(string(src), *top, nil, engine)
	default:
		err = fmt.Errorf("unknown HDL extension on %q (want .v/.sv/.vhd/.vhdl)", path)
	}
	if err != nil {
		fatal(err)
	}

	// A standalone model has no event queue; a fresh one hosts the profiler
	// so the model's phonebook of phase owners and the export formats are the
	// same ones the full-system binaries use.
	var profQ *sim.EventQueue
	if *selfProf > 0 {
		profQ = sim.NewEventQueue()
		p := profQ.AttachProfiler(*selfProf)
		model.AttachProfiler(p,
			profQ.Owner(*top, "rtl-comb"),
			profQ.Owner(*top, "rtl-seq"),
			profQ.Owner(*top, "rtl-memw"))
	}

	if *restPath != "" {
		f, err := os.Open(*restPath)
		if err != nil {
			fatal(err)
		}
		if err := model.RestoreCheckpoint(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	var vcdFile *os.File
	if *vcdPath != "" {
		vcdFile, err = os.Create(*vcdPath)
		if err != nil {
			fatal(err)
		}
		model.AttachVCD(vcdFile, 1)
	}
	for _, s := range sets {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			fatal(fmt.Errorf("bad -set %q (want name=value)", s))
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(val, "0x"), base(val), 64)
		if err != nil {
			fatal(fmt.Errorf("bad value in -set %q: %v", s, err))
		}
		model.SetInput(name, v)
	}

	for i := 0; i < *cycles; i++ {
		model.Tick()
	}
	model.Eval()

	fmt.Printf("# %s after %d cycles\n", *top, model.Cycle())
	c := model.Circuit()
	for _, sig := range c.Signals {
		if sig.Kind == rtl.SigOutput {
			fmt.Printf("%-24s = 0x%x (%d)\n", sig.Name, model.Peek(sig.Name), model.Peek(sig.Name))
		}
	}

	if vcdFile != nil {
		vcdFile.Close()
	}
	if profQ != nil {
		if rep := prof.FromQueue(profQ); rep != nil {
			if err := rep.Export(*selfProfOut, os.Stderr); err != nil {
				fatal(err)
			}
			if *selfProfOut != "" {
				fmt.Fprintf(os.Stderr, "# self-profile written to %s\n", *selfProfOut)
			}
		}
	}
	if *ckptPath != "" {
		f, err := os.Create(*ckptPath)
		if err != nil {
			fatal(err)
		}
		if err := model.SaveCheckpoint(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func base(val string) int {
	if strings.HasPrefix(val, "0x") {
		return 16
	}
	return 10
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rtlsim:", err)
	os.Exit(1)
}
