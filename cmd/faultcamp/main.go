// Command faultcamp runs seeded fault-injection campaigns against the
// simulated system: single bit flips, lost/replayed/delayed transfers and
// DRAM upsets against the NVDLA memory path, or RTL state flips against the
// PMU model. Every injection is classified as masked, detected, corrupted or
// hung (hung runs are reaped by the liveness watchdog, never left spinning),
// and the same seed always reproduces the same classification table.
//
// Examples:
//
//	faultcamp -target nvdla -workload sanity3 -scale 64 -n 32 -seed 7
//	faultcamp -target pmu -n 16 -seed 1 -v
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
	"gem5rtl/internal/prof"
	"gem5rtl/internal/sim"
)

func main() {
	target := flag.String("target", "nvdla", "campaign target: nvdla (memory-path faults) or pmu (RTL state flips)")
	workload := flag.String("workload", "sanity3", "NVDLA trace: sanity3 or googlenet")
	scale := flag.Int("scale", 64, "NVDLA trace footprint divisor")
	nvdlas := flag.Int("nvdla", 1, "number of NVDLA accelerator instances")
	memName := flag.String("mem", "ideal", "memory: ideal, DDR4-1ch/2ch/4ch, GDDR5, HBM")
	inflight := flag.Int("inflight", 64, "per-NVDLA max in-flight memory requests")
	seed := flag.Uint64("seed", 1, "campaign seed; same seed, same classification table")
	count := flag.Int("n", 32, "number of fault injections")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines (any count yields the same table)")
	limitMs := flag.Int("limit-ms", 2000, "per-run simulated time limit in milliseconds")
	timeout := flag.Duration("timeout", 0, "host wall-clock budget for the whole campaign (0 = none)")
	checkPorts := flag.Bool("check-ports", false, "also enforce the timing-port protocol during faulted runs")
	selfProf := flag.Int("self-profile", 0, "attach the event-kernel self-profiler to every injection run with this clock-read cadence (64 is a good default; 0 = off)")
	selfProfOut := flag.String("self-profile-out", "", "self-profile export file for the campaign aggregate: .pb.gz = pprof protobuf, else folded stacks (default: print a table to stderr)")
	verbose := flag.Bool("v", false, "print watchdog/outcome details per injection")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	hostMetrics := flag.String("host-metrics", "", "write periodic host runtime metrics (JSONL) to this file")
	flag.Parse()

	if *checkPorts {
		port.Checking = true
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *pprofAddr != "" {
		stop, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultcamp:", err)
			os.Exit(1)
		}
		defer stop()
	}
	r := experiments.Runner{Workers: *parallel}
	if *hostMetrics != "" {
		f, err := os.Create(*hostMetrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultcamp:", err)
			os.Exit(1)
		}
		defer f.Close()
		r.Monitor = &obs.HostMonitor{W: f}
	}
	limit := sim.Tick(*limitMs) * sim.Millisecond
	var attrMu sync.Mutex
	var attr prof.Report
	var sink func(*prof.Report)
	if *selfProf > 0 {
		sink = func(rep *prof.Report) {
			attrMu.Lock()
			attr.Merge(rep)
			attrMu.Unlock()
		}
	}
	start := time.Now()
	var results []experiments.FaultResult
	var err error
	switch *target {
	case "nvdla":
		results, err = r.FaultCampaign(ctx, experiments.FaultCampaign{
			Spec: experiments.RunSpec{
				Workload: *workload, NVDLAs: *nvdlas, Memory: *memName,
				Inflight: *inflight, Scale: *scale, Limit: limit,
			},
			Seed:        *seed,
			Count:       *count,
			SelfProfile: *selfProf,
			AttrSink:    sink,
		})
	case "pmu":
		results, err = r.PMUFaultCampaign(ctx, experiments.PMUCampaign{
			Seed: *seed, Count: *count, Limit: limit,
			SelfProfile: *selfProf, AttrSink: sink,
		})
	default:
		err = fmt.Errorf("unknown target %q (want nvdla or pmu)", *target)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultcamp:", err)
		os.Exit(1)
	}

	fmt.Printf("# %s fault campaign: seed=%d n=%d\n", *target, *seed, *count)
	for _, res := range results {
		line := fmt.Sprintf("%3d  %-44s %s", res.Index, res.Fault, res.Outcome)
		if *verbose && res.Detail != "" {
			line += "  (" + res.Detail + ")"
		}
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Print(experiments.FormatFaultTable(results))
	if *selfProf > 0 {
		if err := attr.Export(*selfProfOut, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "faultcamp:", err)
			os.Exit(1)
		}
		if *selfProfOut != "" {
			fmt.Fprintf(os.Stderr, "# self-profile (campaign aggregate) written to %s\n", *selfProfOut)
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "# %d injections in %s host time (%d workers)\n",
			len(results), time.Since(start).Round(time.Millisecond), *parallel)
	}
}
