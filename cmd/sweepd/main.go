// Command sweepd serves sweep-as-a-service: a long-running experiment server
// that accepts RunSpec batches over HTTP/JSON (see internal/sweepd for the
// API), shards the points across a simulation worker pool, and memoises
// every result in a persistent fingerprint-keyed store so identical points —
// across jobs, clients and restarts — simulate exactly once.
//
//	sweepd -addr :8080 -store-dir results/ -checkpoint-dir ckpts/ -checkpoint-at 2us
//
// The execution layer is fault tolerant: transient point failures (hangs,
// blown -point-deadline budgets, worker panics) retry on a seeded backoff
// schedule (-retry-max, -retry-base, -retry-seed); points that fail
// permanently or exhaust their budget are quarantined in the store's poison/
// directory and served as errors until un-quarantined; -max-queue sheds
// submissions beyond the queue depth bound with HTTP 429.
//
// SIGINT/SIGTERM starts a graceful drain: the server stops accepting jobs,
// finishes every queued point (retry backoffs are skipped), then exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gem5rtl/internal/sim"
	"gem5rtl/internal/sweepd"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = all CPUs)")
	storeDir := flag.String("store-dir", "", "persist results as <fingerprint>.json here (empty = in-memory only)")
	ckptDir := flag.String("checkpoint-dir", "", "shared warm-start checkpoint directory (requires -checkpoint-at)")
	ckptAt := flag.Duration("checkpoint-at", 0, "warm-start: snapshot each point at this simulated time (0 = cold runs)")
	quota := flag.Int("quota", 0, "max live (queued+running) points per client (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "max waiting points (pending + retry-wait); excess submissions shed with 429 (0 = unbounded)")
	retryMax := flag.Int("retry-max", 0, "total execution attempts per point before quarantine (0 = default 3, 1 disables retries)")
	retryBase := flag.Duration("retry-base", 0, "first retry backoff, doubling per attempt (0 = default 100ms)")
	retrySeed := flag.Uint64("retry-seed", 0, "seed for the deterministic retry jitter schedule")
	pointDeadline := flag.Duration("point-deadline", 0, "wall-clock budget per execution attempt; a blown deadline retries the point (0 = none)")
	watchdog := flag.Bool("watchdog", false, "attach a liveness watchdog to every point so hangs fail fast")
	selfProfile := flag.Int("self-profile", 0, "attach the event-kernel self-profiler to every point with this clock-read cadence (64 is a good default; 0 = off); attribution aggregates on GET /v1/metrics")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "how long a signal-triggered drain may run before abandoning the queue")
	flag.Parse()

	srv, err := sweepd.New(sweepd.Config{
		Workers:  *workers,
		StoreDir: *storeDir,
		CkptDir:  *ckptDir,
		Warmup:   sim.Tick(ckptAt.Nanoseconds()) * sim.Nanosecond,
		Guard:    *watchdog,
		Quota:    *quota,
		MaxQueue: *maxQueue,
		Retry: sweepd.RetryPolicy{
			MaxAttempts: *retryMax,
			BaseDelay:   *retryBase,
			Seed:        *retrySeed,
		},
		PointDeadline: *pointDeadline,
		SelfProfile:   *selfProfile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	// Printed (not logged) so scripts can capture the ephemeral port.
	fmt.Printf("sweepd: listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sweepd: %v: draining (finishing queued points, rejecting new jobs)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd: drain:", err)
		}
		shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelShutdown()
		_ = httpSrv.Shutdown(shutdownCtx)
		fmt.Fprintln(os.Stderr, "sweepd: drained, exiting")
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "sweepd:", err)
			os.Exit(1)
		}
	}
}
