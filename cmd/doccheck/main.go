// Command doccheck fails when an exported symbol lacks a doc comment. It
// backs the CI documentation gate for the kernel packages (internal/sim,
// internal/port), whose exported API documents scheduling and packet
// ownership contracts that the rest of the simulator relies on:
//
//	go run ./cmd/doccheck ./internal/sim ./internal/port
//
// Test files are exempt. A doc comment on the enclosing var/const/type
// block satisfies every name the block declares.
//
// With -flags it switches to the flag-reference audit: every command-line
// flag registered by the named command directories (flag.String and friends,
// including flags on subcommand FlagSets) must be mentioned as -name in at
// least one of the listed documentation files, so a binary cannot grow an
// undocumented knob:
//
//	go run ./cmd/doccheck -flags README.md,EXPERIMENTS.md ./cmd/gem5rtl ./cmd/rtlsim
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	flagDocs := flag.String("flags", "", "comma-separated documentation files; audit that every flag registered by the package-dir arguments is mentioned in one of them")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-flags doc.md,...] <package-dir>...")
		os.Exit(2)
	}
	if *flagDocs != "" {
		auditFlags(strings.Split(*flagDocs, ","), flag.Args())
		return
	}
	bad := 0
	for _, dir := range flag.Args() {
		bad += checkDir(strings.TrimPrefix(dir, "./"))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbols without doc comments\n", bad)
		os.Exit(1)
	}
}

// flagNameArg maps the flag-registration functions of package flag (and the
// identical methods on *flag.FlagSet) to the position of their name argument.
var flagNameArg = map[string]int{
	"Bool": 0, "Duration": 0, "Float64": 0, "Func": 0, "Int": 0, "Int64": 0,
	"String": 0, "Uint": 0, "Uint64": 0,
	"BoolVar": 1, "DurationVar": 1, "Float64Var": 1, "IntVar": 1,
	"Int64Var": 1, "StringVar": 1, "TextVar": 1, "UintVar": 1,
	"Uint64Var": 1, "Var": 1,
}

// flagReg is one registered command-line flag and where it was registered.
type flagReg struct {
	name string
	pos  token.Position
}

// auditFlags exits non-zero when a flag registered by any of dirs is not
// documented in any of docFiles.
func auditFlags(docFiles, dirs []string) {
	var docs []string
	for _, f := range docFiles {
		buf, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(1)
		}
		docs = append(docs, string(buf))
	}
	bad := 0
	for _, dir := range dirs {
		for _, reg := range collectFlags(strings.TrimPrefix(dir, "./")) {
			if !documented(docs, reg.name) {
				fmt.Fprintf(os.Stderr, "%s:%d: flag -%s is not documented in %s\n",
					reg.pos.Filename, reg.pos.Line, reg.name, strings.Join(docFiles, " or "))
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented flags\n", bad)
		os.Exit(1)
	}
}

// collectFlags parses the command package in dir and returns every flag
// registration it finds: a call to a function or method named like a flag
// constructor whose name argument is a string literal. The receiver is not
// type-checked — inside a main package the registration names are
// unambiguous in practice, and a false negative here silently exempts a
// flag, which is the failure mode the audit exists to prevent.
func collectFlags(dir string) []flagReg {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		os.Exit(1)
	}
	var regs []flagReg
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				idx, ok := flagNameArg[sel.Sel.Name]
				if !ok || len(call.Args) < idx+2 {
					return true
				}
				lit, ok := call.Args[idx].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				name := strings.Trim(lit.Value, `"`)
				regs = append(regs, flagReg{name, fset.Position(call.Pos())})
				return true
			})
		}
	}
	return regs
}

// documented reports whether -name appears in any doc, delimited so -out
// does not satisfy -output: the character after the name must not extend
// the flag word.
func documented(docs []string, name string) bool {
	needle := "-" + name
	for _, doc := range docs {
		for i := 0; ; {
			j := strings.Index(doc[i:], needle)
			if j < 0 {
				break
			}
			end := i + j + len(needle)
			if end == len(doc) || !flagWordChar(doc[end]) {
				return true
			}
			i = end
		}
	}
	return false
}

// flagWordChar reports whether c could extend a flag name.
func flagWordChar(c byte) bool {
	return c == '-' || c == '_' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		os.Exit(1)
	}
	bad := 0
	for _, pkg := range pkgs {
		for path, file := range pkg.Files {
			bad += checkFile(fset, filepath.ToSlash(path), file)
		}
	}
	return bad
}

func checkFile(fset *token.FileSet, path string, file *ast.File) int {
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s:%d: exported %s %s has no doc comment\n", path, p.Line, kind, name)
		bad++
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(name.Pos(), "value", name.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// receiverExported reports whether a method's receiver type is itself
// exported — methods on unexported types are not part of the package API.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
