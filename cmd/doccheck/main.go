// Command doccheck fails when an exported symbol lacks a doc comment. It
// backs the CI documentation gate for the kernel packages (internal/sim,
// internal/port), whose exported API documents scheduling and packet
// ownership contracts that the rest of the simulator relies on:
//
//	go run ./cmd/doccheck ./internal/sim ./internal/port
//
// Test files are exempt. A doc comment on the enclosing var/const/type
// block satisfies every name the block declares.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += checkDir(strings.TrimPrefix(dir, "./"))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbols without doc comments\n", bad)
		os.Exit(1)
	}
}

func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		os.Exit(1)
	}
	bad := 0
	for _, pkg := range pkgs {
		for path, file := range pkg.Files {
			bad += checkFile(fset, filepath.ToSlash(path), file)
		}
	}
	return bad
}

func checkFile(fset *token.FileSet, path string, file *ast.File) int {
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s:%d: exported %s %s has no doc comment\n", path, p.Line, kind, name)
		bad++
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(name.Pos(), "value", name.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// receiverExported reports whether a method's receiver type is itself
// exported — methods on unexported types are not part of the package API.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}
