// Command nvdla-dse reproduces the NVDLA design-space exploration of §6.2
// (Figures 6 and 7): it sweeps the maximum in-flight request cap, the memory
// technology, and the number of accelerator instances, printing performance
// normalised to an ideal 1-cycle main memory in the same layout as the
// paper's figures. The sweep points are independent simulations and are
// sharded across -parallel worker goroutines; the printed tables are
// byte-identical for any worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/guard"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/port"
	"gem5rtl/internal/prof"
	"gem5rtl/internal/sim"
)

func main() {
	workload := flag.String("workload", "googlenet", "googlenet (Figure 6) or sanity3 (Figure 7)")
	scale := flag.Int("scale", 8, "trace footprint divisor (1 = full synthetic layers)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for the sweep (1 = sequential)")
	timeout := flag.Duration("timeout", 0, "host wall-clock budget for the whole sweep (0 = none)")
	ckptAt := flag.Duration("checkpoint-at", 0, "warm-start: snapshot each point at this simulated time and restore it on later runs (0 = off)")
	ckptDir := flag.String("checkpoint-dir", "", "persist warm-start snapshots here so they survive across runs (requires -checkpoint-at)")
	verbose := flag.Bool("v", false, "print per-run progress to stderr")
	rtlEngine := flag.String("rtl-engine", "", "RTL simulation engine for every point (closure or bytecode; default bytecode; results are engine-independent)")
	shards := flag.Int("shards", 0, "parallel simulation shards per point (0/1 = serial; results are shard-count-independent; divides cores among -parallel workers)")
	watchdog := flag.Bool("watchdog", false, "attach a liveness watchdog to every cold point so hangs fail fast with a diagnostic (ignored on warm-start runs)")
	checkPorts := flag.Bool("check-ports", false, "enforce the timing-port handshake protocol on every bound link (panics on a violation)")
	selfProf := flag.Int("self-profile", 0, "attach the event-kernel self-profiler to every point with this clock-read cadence (64 is a good default; 0 = off)")
	selfProfOut := flag.String("self-profile-out", "", "self-profile export file for the sweep-wide aggregate: .pb.gz = pprof protobuf, else folded stacks (default: print a table to stderr)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	hostMetrics := flag.String("host-metrics", "", "write periodic host runtime metrics (JSONL) to this file")
	flag.Parse()

	if *checkPorts {
		port.Checking = true
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *pprofAddr != "" {
		stop, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nvdla-dse:", err)
			os.Exit(1)
		}
		defer stop()
	}

	// Sharded points each burn up to Shards cores; unless the user pinned
	// -parallel explicitly, shrink the worker pool so workers x shards stays
	// within the machine instead of oversubscribing every run at once.
	if *shards > 1 {
		parallelSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "parallel" {
				parallelSet = true
			}
		})
		if !parallelSet {
			if *parallel = runtime.NumCPU() / *shards; *parallel < 1 {
				*parallel = 1
			}
		}
	}

	p := experiments.DSEParams{Scale: *scale, Limit: 8 * sim.Second, RTLEngine: *rtlEngine, Shards: *shards}
	// Shared spec validation: a bad -workload/-scale fails here with the
	// same message the sweep service's submit endpoint would produce.
	if err := p.Spec(*workload, 1, "ideal", 1).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "nvdla-dse:", err)
		os.Exit(2)
	}
	r := experiments.Runner{Workers: *parallel}
	var attrMu sync.Mutex
	var attr prof.Report
	if *selfProf > 0 {
		r.SelfProfile = *selfProf
		r.AttrSink = func(rep *prof.Report) {
			attrMu.Lock()
			attr.Merge(rep)
			attrMu.Unlock()
		}
	}
	if *hostMetrics != "" {
		f, err := os.Create(*hostMetrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nvdla-dse:", err)
			os.Exit(1)
		}
		defer f.Close()
		r.Monitor = &obs.HostMonitor{W: f}
	}
	var cache *experiments.CheckpointCache
	if *ckptAt > 0 {
		cache = experiments.NewCheckpointCache(*ckptDir)
		r.Options = append(r.Options, experiments.WithWarmStart(
			sim.Tick(ckptAt.Nanoseconds())*sim.Nanosecond, cache))
	}
	if *watchdog {
		r.Options = append(r.Options, experiments.WithWatchdog(guard.Config{}))
	}
	if *verbose {
		r.Report = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	start := time.Now()
	points, err := r.DSEFigure(ctx, *workload, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvdla-dse:", err)
		os.Exit(1)
	}
	if *selfProf > 0 {
		if err := attr.Export(*selfProfOut, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "nvdla-dse:", err)
			os.Exit(1)
		}
		if *selfProfOut != "" {
			fmt.Fprintf(os.Stderr, "# self-profile (sweep aggregate) written to %s\n", *selfProfOut)
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "# %d points in %s host time (%d workers)\n",
			len(points), time.Since(start).Round(time.Millisecond), *parallel)
		if cache != nil {
			cs := cache.Stats()
			fmt.Fprintf(os.Stderr, "# warm-start cache: %d hits, %d misses, %d stale\n",
				cs.Hits, cs.Misses, cs.Stale)
		}
	}

	fig := "Figure 6"
	if *workload == "sanity3" {
		fig = "Figure 7"
	}
	fmt.Printf("# %s: %s, performance normalised to ideal 1-cycle memory\n", fig, *workload)
	for _, n := range experiments.NVDLACounts {
		fmt.Printf("\n## %d NVDLA accelerator(s)\n", n)
		fmt.Printf("%-10s", "mem\\inflight")
		for _, inf := range experiments.InflightSweep {
			fmt.Printf("  %6d", inf)
		}
		fmt.Println()
		for _, tech := range []string{"DDR4-1ch", "DDR4-2ch", "DDR4-4ch", "GDDR5", "HBM"} {
			fmt.Printf("%-10s", tech)
			for _, inf := range experiments.InflightSweep {
				for _, pt := range points {
					if pt.NVDLAs == n && pt.Memory == tech && pt.Inflight == inf {
						fmt.Printf("  %6.3f", pt.Perf)
					}
				}
			}
			fmt.Println()
		}
	}
}
