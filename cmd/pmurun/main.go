// Command pmurun reproduces the PMU use case (§6.1): it runs the three-sort
// benchmark on the simulated SoC with the PMU RTL model attached, prints the
// Figure 5 interval series (PMU vs gem5 IPC and MPKI over time), and — with
// -table2 — the simulation-time overhead matrix of Table 2.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/obs"
)

func main() {
	n := flag.Int("n", 250, "selection/bubble sort array size (quicksort gets 10x)")
	sleepUs := flag.Int("sleep-us", 100, "inter-phase sleep in microseconds")
	interval := flag.Int("interval", 10000, "PMU interrupt period in PMU cycles")
	table2 := flag.Bool("table2", false, "run the Table 2 overhead study instead of Figure 5")
	parallel := flag.Int("parallel", 1, "worker goroutines for -table2 (keep 1 for faithful host times)")
	timeout := flag.Duration("timeout", 0, "host wall-clock budget (0 = none)")
	selfProf := flag.Int("self-profile", 0, "attach the event-kernel self-profiler with this clock-read cadence (64 is a good default; 0 = off; Figure 5 mode only)")
	selfProfOut := flag.String("self-profile-out", "", "self-profile export file: .pb.gz = pprof protobuf, else folded stacks (default: print a table to stderr)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	hostMetrics := flag.String("host-metrics", "", "write periodic host runtime metrics (JSONL) to this file")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *pprofAddr != "" {
		stop, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmurun:", err)
			os.Exit(1)
		}
		defer stop()
	}
	var mon *obs.HostMonitor
	if *hostMetrics != "" {
		f, err := os.Create(*hostMetrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmurun:", err)
			os.Exit(1)
		}
		defer f.Close()
		mon = &obs.HostMonitor{W: f}
	}

	if *table2 {
		runTable2(ctx, *sleepUs, *parallel, mon)
		return
	}
	if mon != nil {
		mon.Start()
		defer mon.Stop()
	}

	p := experiments.Fig5Params{N: *n, SleepUs: *sleepUs, IntervalCycles: *interval,
		SelfProfile: *selfProf}
	res, err := experiments.RunFigure5Ctx(ctx, p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmurun:", err)
		os.Exit(1)
	}
	if res.Attr != nil {
		if err := res.Attr.Export(*selfProfOut, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "pmurun:", err)
			os.Exit(1)
		}
		if *selfProfOut != "" {
			fmt.Fprintf(os.Stderr, "# self-profile written to %s\n", *selfProfOut)
		}
	}
	fmt.Println("# Figure 5: IPC/MPKI over time, PMU counters vs gem5 statistics")
	fmt.Println("# time_ms  pmu_ipc  gem5_ipc  pmu_mpki  gem5_mpki")
	for _, s := range res.Samples {
		fmt.Printf("%8.4f  %7.3f  %8.3f  %8.2f  %9.2f\n",
			s.TimeMs, s.PMUIPC, s.Gem5IPC, s.PMUMPKI, s.Gem5MPKI)
	}
	fmt.Printf("# totals: PMU committed=%d gem5 committed=%d (loss %.3f%%)\n",
		res.PMUTotalInsts, res.Gem5TotalInsts,
		100*(1-float64(res.PMUTotalInsts)/float64(res.Gem5TotalInsts)))
	fmt.Printf("# simulated %v ticks in %v host time\n", res.SimTicks, res.HostTime)
}

func runTable2(ctx context.Context, sleepUs, parallel int, mon *obs.HostMonitor) {
	sizes := experiments.DefaultTable2Sizes()
	cells, err := experiments.Runner{Workers: parallel, Monitor: mon}.Table2(ctx, sizes, sleepUs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmurun:", err)
		os.Exit(1)
	}
	fmt.Println("# Table 2: simulation-time overhead normalised to gem5 without the PMU")
	fmt.Printf("%-22s", "Configs\\Size")
	for _, n := range sizes {
		fmt.Printf("  %8d", n)
	}
	fmt.Println()
	for _, cfg := range experiments.Table2Configs() {
		fmt.Printf("%-22s", cfg.Name)
		for _, n := range sizes {
			for _, c := range cells {
				if c.Config == cfg.Name && c.Size == n {
					fmt.Printf("  %8.2f", c.Overhead)
				}
			}
		}
		fmt.Println()
	}
}
