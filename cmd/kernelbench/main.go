// Command kernelbench runs the event-kernel benchmark suite and maintains
// the committed BENCH_kernel.json baseline.
//
// Produce (or refresh) the baseline:
//
//	go run ./cmd/kernelbench -out BENCH_kernel.json
//
// CI gate — run the suite and fail on >10% regression against the committed
// baseline (allocs/op, B/op, the calendar-queue speedup and the RTL compile
// speedup; see PERFORMANCE.md for why raw ns/op is not gated):
//
//	go run ./cmd/kernelbench -baseline BENCH_kernel.json
package main

import (
	"flag"
	"fmt"
	"os"

	"gem5rtl/internal/kernelbench"
)

func main() {
	out := flag.String("out", "", "write BENCH_kernel.json to this path")
	baseline := flag.String("baseline", "", "compare against this committed baseline and exit non-zero on regression")
	threshold := flag.Float64("threshold", 0.10, "relative regression tolerance")
	only := flag.String("only", "", "run only suite rows whose name contains this substring (focused gate; -baseline is narrowed to the measured rows)")
	flag.Parse()
	if *out == "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "kernelbench: need -out and/or -baseline")
		os.Exit(2)
	}
	if *out != "" && *only != "" {
		fmt.Fprintln(os.Stderr, "kernelbench: -only runs a partial suite; refusing to write it with -out")
		os.Exit(2)
	}

	rep := kernelbench.CollectOnly(*only, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	fmt.Fprintf(os.Stderr, "calendar speedup vs reference heap: %.2fx\n", rep.CalendarSpeedup)
	fmt.Fprintf(os.Stderr, "rtl bytecode speedup vs closure engine: %.2fx\n", rep.RTLSpeedup)
	fmt.Fprintf(os.Stderr, "self-profiler dispatch overhead: %.3fx\n", rep.SelfProfOverhead)
	if rep.PsimSpeedup > 0 {
		fmt.Fprintf(os.Stderr, "psim 4-shard speedup vs serial: %.2fx\n", rep.PsimSpeedup)
	} else {
		fmt.Fprintln(os.Stderr, "psim 4-shard speedup: not measured (host below 4 CPUs)")
	}

	if *out != "" {
		buf, err := rep.Marshal()
		if err != nil {
			fmt.Fprintln(os.Stderr, "kernelbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "kernelbench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", *out)
	}

	if *baseline != "" {
		buf, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kernelbench:", err)
			os.Exit(1)
		}
		base, err := kernelbench.ParseReport(buf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kernelbench: parsing baseline:", err)
			os.Exit(1)
		}
		if *only != "" {
			base = kernelbench.RestrictBaseline(base, rep)
		}
		problems := kernelbench.Compare(rep, base, *threshold)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "REGRESSION:", p)
		}
		if len(problems) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s (threshold %.0f%%)\n", *baseline, *threshold*100)
	}
}
