// Command overhead reproduces the simulation-time overhead studies: Table 2
// (gem5 vs gem5+PMU vs gem5+PMU+waveform on the sort benchmark) and Table 3
// (standalone RTL-model execution vs full-system with perfect memory vs
// full-system with DDR4-4ch on the NVDLA workloads).
package main

import (
	"flag"
	"fmt"
	"os"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

func main() {
	table := flag.Int("table", 3, "which table to reproduce: 2 or 3")
	scale := flag.Int("scale", 8, "NVDLA trace footprint divisor (table 3)")
	flag.Parse()

	switch *table {
	case 2:
		cells, err := experiments.RunTable2(experiments.DefaultTable2Sizes(), 100)
		if err != nil {
			fatal(err)
		}
		fmt.Println("# Table 2: host time normalised to gem5 without PMU")
		fmt.Printf("%-22s %8s %10s %10s\n", "config", "size", "host", "overhead")
		for _, c := range cells {
			fmt.Printf("%-22s %8d %10s %10.2f\n", c.Config, c.Size,
				c.HostTime.Round(1e6), c.Overhead)
		}
	case 3:
		rows, err := experiments.RunTable3(experiments.DSEParams{
			Scale: *scale, Limit: 8 * sim.Second})
		if err != nil {
			fatal(err)
		}
		fmt.Println("# Table 3: host time normalised to the standalone RTL-model run")
		fmt.Printf("%-28s %-10s %12s %10s\n", "config", "workload", "host", "overhead")
		for _, r := range rows {
			fmt.Printf("%-28s %-10s %12s %10.2f\n", r.Config, r.Workload,
				r.HostTime.Round(1e5), r.Overhead)
		}
	default:
		fatal(fmt.Errorf("unknown table %d", *table))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overhead:", err)
	os.Exit(1)
}
