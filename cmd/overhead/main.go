// Command overhead reproduces the simulation-time overhead studies: Table 2
// (gem5 vs gem5+PMU vs gem5+PMU+waveform on the sort benchmark) and Table 3
// (standalone RTL-model execution vs full-system with perfect memory vs
// full-system with DDR4-4ch on the NVDLA workloads).
//
// -parallel defaults to 1 because the tables report host wall-clock times:
// concurrent workers share host cores and inflate each other's measurements.
// Raise it only for a quick shape check.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/obs"
	"gem5rtl/internal/prof"
	"gem5rtl/internal/sim"
)

func main() {
	table := flag.Int("table", 3, "which table to reproduce: 2 or 3")
	scale := flag.Int("scale", 8, "NVDLA trace footprint divisor (table 3)")
	parallel := flag.Int("parallel", 1, "worker goroutines (keep 1 for faithful host times)")
	timeout := flag.Duration("timeout", 0, "host wall-clock budget for the study (0 = none)")
	selfProf := flag.Int("self-profile", 0, "attach the event-kernel self-profiler to every sweep point with this clock-read cadence (0 = off)")
	selfProfOut := flag.String("self-profile-out", "", "self-profile export file for the study aggregate: .pb.gz = pprof protobuf, else folded stacks (default: print a table to stderr)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	hostMetrics := flag.String("host-metrics", "", "write periodic host runtime metrics (JSONL) to this file")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *pprofAddr != "" {
		stop, err := obs.StartPprof(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	r := experiments.Runner{Workers: *parallel}
	var attrMu sync.Mutex
	var attr prof.Report
	if *selfProf > 0 {
		r.SelfProfile = *selfProf
		r.AttrSink = func(rep *prof.Report) {
			attrMu.Lock()
			attr.Merge(rep)
			attrMu.Unlock()
		}
	}
	if *hostMetrics != "" {
		f, err := os.Create(*hostMetrics)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r.Monitor = &obs.HostMonitor{W: f}
	}

	switch *table {
	case 2:
		cells, err := r.Table2(ctx, experiments.DefaultTable2Sizes(), 100)
		if err != nil {
			fatal(err)
		}
		fmt.Println("# Table 2: host time normalised to gem5 without PMU")
		fmt.Printf("%-22s %8s %10s %10s\n", "config", "size", "host", "overhead")
		for _, c := range cells {
			fmt.Printf("%-22s %8d %10s %10.2f\n", c.Config, c.Size,
				c.HostTime.Round(1e6), c.Overhead)
		}
	case 3:
		rows, err := r.Table3(ctx, experiments.DSEParams{
			Scale: *scale, Limit: 8 * sim.Second})
		if err != nil {
			fatal(err)
		}
		fmt.Println("# Table 3: host time normalised to the standalone RTL-model run")
		fmt.Printf("%-28s %-10s %12s %10s\n", "config", "workload", "host", "overhead")
		for _, r := range rows {
			fmt.Printf("%-28s %-10s %12s %10.2f\n", r.Config, r.Workload,
				r.HostTime.Round(1e5), r.Overhead)
		}
	default:
		fatal(fmt.Errorf("unknown table %d", *table))
	}
	if *selfProf > 0 {
		if err := attr.Export(*selfProfOut, os.Stderr); err != nil {
			fatal(err)
		}
		if *selfProfOut != "" {
			fmt.Fprintf(os.Stderr, "# self-profile (study aggregate) written to %s\n", *selfProfOut)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overhead:", err)
	os.Exit(1)
}
