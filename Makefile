# gem5rtl build/test entry points. The bench target produces the committed
# event-kernel benchmark baseline; see PERFORMANCE.md.

GO ?= go

.PHONY: all build test bench bench-check doccheck

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Refresh the committed kernel benchmark baseline (run on a quiet machine).
bench:
	$(GO) run ./cmd/kernelbench -out BENCH_kernel.json

# CI gate: run the suite and fail on >10% regression vs the committed
# baseline (allocs/op, B/op, calendar-queue and RTL compile speedups).
bench-check:
	$(GO) run ./cmd/kernelbench -baseline BENCH_kernel.json

# Enforce godoc comments on every exported symbol of the kernel packages,
# then audit that every command-line flag the binaries register is documented
# in the user-facing docs (see cmd/doccheck -flags).
doccheck:
	$(GO) run ./cmd/doccheck ./internal/sim ./internal/port ./internal/sweepd ./internal/rtlc ./internal/prof ./internal/psim
	$(GO) run ./cmd/doccheck -flags README.md,EXPERIMENTS.md,PERFORMANCE.md \
		./cmd/gem5rtl ./cmd/nvdla-dse ./cmd/rtlsim ./cmd/pmurun ./cmd/kernelbench \
		./cmd/sweepd ./cmd/sweepctl ./cmd/faultcamp ./cmd/overhead
