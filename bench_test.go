// Top-level benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§6), each delegating to internal/experiments so a
// benchmark run regenerates the same data as the cmd/ tools. Custom metrics
// report the paper's headline quantities (normalised performance, overhead
// ratios) alongside the usual ns/op.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package gem5rtl

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"gem5rtl/internal/experiments"
	"gem5rtl/internal/sim"
)

// benchDSE keeps per-iteration cost low while preserving shapes.
var benchDSE = experiments.DSEParams{Scale: 32, Limit: 8 * sim.Second}

// BenchmarkFigure5_PMUvsGem5 measures a full PMU-instrumented sort run with
// interval sampling, reporting how closely the PMU tracks gem5 statistics.
func BenchmarkFigure5_PMUvsGem5(b *testing.B) {
	p := experiments.Fig5Params{N: 60, SleepUs: 50, IntervalCycles: 5000}
	var maxDiff, samples float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure5Ctx(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		samples = float64(len(res.Samples))
		maxDiff = 0
		for _, s := range res.Samples {
			d := s.PMUIPC - s.Gem5IPC
			if d < 0 {
				d = -d
			}
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	b.ReportMetric(samples, "intervals")
	b.ReportMetric(maxDiff, "maxIPCdelta")
}

// BenchmarkTable2 measures the three Table 2 configurations (gem5,
// gem5+PMU, gem5+PMU+waveform) on one sort size; comparing the ns/op across
// sub-benchmarks yields the overhead column.
func BenchmarkTable2(b *testing.B) {
	for _, cfg := range experiments.Table2Configs() {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cells, err := experiments.RunTable2Config(cfg, 100, 50)
				if err != nil {
					b.Fatal(err)
				}
				_ = cells
			}
		})
	}
}

// dsePoint runs a single DSE cell and reports its normalised performance.
func dsePoint(b *testing.B, workload string, n int, mem string, inflight int) {
	b.Helper()
	ideal, err := experiments.Run(context.Background(), benchDSE.Spec(workload, n, "ideal", inflight))
	if err != nil {
		b.Fatal(err)
	}
	var t sim.Tick
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err = experiments.Run(context.Background(), benchDSE.Spec(workload, n, mem, inflight))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ideal)/float64(t), "perf_vs_ideal")
}

// BenchmarkFigure6_GoogleNet regenerates representative cells of Figure 6:
// the GoogleNet DSE across accelerator counts, memory technologies and
// in-flight caps (cmd/nvdla-dse prints the complete grid).
func BenchmarkFigure6_GoogleNet(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		for _, mem := range []string{"DDR4-1ch", "DDR4-4ch", "HBM"} {
			for _, inflight := range []int{1, 64, 240} {
				name := fmt.Sprintf("n%d/%s/if%d", n, mem, inflight)
				b.Run(name, func(b *testing.B) { dsePoint(b, "googlenet", n, mem, inflight) })
			}
		}
	}
}

// BenchmarkFigure7_Sanity3 regenerates representative cells of Figure 7:
// the memory-intensive sanity3 DSE.
func BenchmarkFigure7_Sanity3(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		for _, mem := range []string{"DDR4-1ch", "DDR4-4ch", "HBM"} {
			for _, inflight := range []int{1, 64, 240} {
				name := fmt.Sprintf("n%d/%s/if%d", n, mem, inflight)
				b.Run(name, func(b *testing.B) { dsePoint(b, "sanity3", n, mem, inflight) })
			}
		}
	}
}

// BenchmarkSweep measures one fixed DSE sub-grid (12 points + 4 shared
// ideal baselines) through the experiment runner, sequentially and with one
// worker per host core. The workers=N/workers=1 ns/op ratio is the parallel
// sweep speedup; results are tick-identical across worker counts (see
// TestSweepParallelMatchesSequential). The warm-start variant re-runs the
// same grid against a populated checkpoint cache, so every point restores a
// post-warm-up snapshot instead of re-simulating the prefix from tick 0; its
// ns/op against workers=1 is the warm-start speedup, and the results stay
// tick-identical (TestWarmStartMatchesCold).
func BenchmarkSweep(b *testing.B) {
	var specs []experiments.RunSpec
	for _, inflight := range []int{1, 16, 64, 240} {
		for _, mem := range []string{"DDR4-1ch", "DDR4-4ch", "HBM"} {
			specs = append(specs, benchDSE.Spec("sanity3", 1, mem, inflight))
		}
	}
	sweep := func(b *testing.B, r experiments.Runner) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			results, err := r.Sweep(context.Background(), specs)
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range results {
				if res.Err != nil {
					b.Fatalf("%v: %v", res.Spec, res.Err)
				}
			}
		}
		b.ReportMetric(float64(len(specs)), "points")
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sweep(b, experiments.Runner{Workers: workers})
		})
	}
	b.Run("workers=1/warm-start", func(b *testing.B) {
		// Snapshot each point at 2µs simulated — most of the scale-32
		// sanity3 runs — and restore it on every timed iteration.
		r := experiments.Runner{Workers: 1, Options: []experiments.Option{
			experiments.WithWarmStart(2*sim.Microsecond, experiments.NewCheckpointCache(""))}}
		if _, err := r.Sweep(context.Background(), specs); err != nil {
			b.Fatal(err) // populate the cache outside the timing loop
		}
		b.ResetTimer()
		sweep(b, r)
	})
}

// BenchmarkTable3 measures the three Table 3 configurations per workload;
// the overhead columns are the ns/op ratios against standalone-rtl.
func BenchmarkTable3(b *testing.B) {
	for _, wl := range []string{"sanity3", "googlenet"} {
		wl := wl
		b.Run("standalone-rtl/"+wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunStandaloneOnce(wl, benchDSE); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("gem5+NVDLA+perfect-memory/"+wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run(context.Background(), benchDSE.Spec(wl, 1, "ideal", 240)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("gem5+NVDLA+DDR4/"+wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run(context.Background(), benchDSE.Spec(wl, 1, "DDR4-4ch", 240)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
