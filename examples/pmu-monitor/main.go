// pmu-monitor: the paper's first use case as a runnable example. An SoC with
// one out-of-order core runs the three-sort benchmark while the PMU RTL
// model — compiled from Verilog by the gem5rtl toolflow — counts commits,
// L1D misses and cycles, interrupting every 10,000 cycles. The example
// prints an IPC/MPKI timeline from the PMU counters side by side with the
// simulator's own statistics (Figure 5).
package main

import (
	"context"
	"fmt"
	"log"

	"gem5rtl/internal/experiments"
)

func main() {
	p := experiments.Fig5Params{N: 120, SleepUs: 80, IntervalCycles: 10000}
	res, err := experiments.RunFigure5Ctx(context.Background(), p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("time_ms   PMU-IPC  gem5-IPC  PMU-MPKI  gem5-MPKI")
	for _, s := range res.Samples {
		bar := ""
		for i := 0; i < int(s.PMUIPC*20); i++ {
			bar += "#"
		}
		fmt.Printf("%7.3f   %7.3f  %8.3f  %8.2f  %9.2f  %s\n",
			s.TimeMs, s.PMUIPC, s.Gem5IPC, s.PMUMPKI, s.Gem5MPKI, bar)
	}
	fmt.Printf("\nPMU counted %d instructions; gem5 counted %d (delta: reset losses)\n",
		res.PMUTotalInsts, res.Gem5TotalInsts)
	fmt.Printf("simulated %v in %v host time\n", res.SimTicks, res.HostTime)
}
