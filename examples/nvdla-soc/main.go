// nvdla-soc: the paper's second use case as a runnable example. One NVDLA
// accelerator is integrated into the Table 1 SoC (CSB on a CPU-side port,
// DBBIF/SRAMIF onto the memory crossbar), the sanity3 trace is loaded into
// main memory, and the accelerator runs to its completion interrupt — once
// on DDR4-1ch and once on HBM, showing the memory-technology sensitivity
// the design-space exploration quantifies.
package main

import (
	"fmt"
	"log"

	"gem5rtl/internal/sim"
	"gem5rtl/internal/soc"
	"gem5rtl/internal/trace"
)

func run(memName string) (sim.Tick, error) {
	cfg := soc.DefaultConfig()
	cfg.Cores = 1
	cfg.Memory = memName
	cfg.NVDLAs = 1
	cfg.NVDLAMaxInflight = 64
	s, err := soc.Build(cfg)
	if err != nil {
		return 0, err
	}
	s.NVDLAs[0].Start()
	tr, err := trace.Scaled("sanity3", 1<<32, 16)
	if err != nil {
		return 0, err
	}
	s.PlayTrace(0, tr)
	done, err := s.RunUntilNVDLAsDone(4 * sim.Second)
	if err != nil {
		return 0, err
	}
	st := s.NVDLAWrappers[0].Stats()
	fmt.Printf("%-9s finished in %8.3f us  (busy %d, memory-stall %d cycles; %d KiB read)\n",
		memName, float64(done)/float64(sim.Microsecond),
		st.BusyCycles, st.StallCycles, st.BytesRead/1024)
	return done, nil
}

func main() {
	fmt.Println("sanity3 on one NVDLA, 64 in-flight requests:")
	ddr, err := run("DDR4-1ch")
	if err != nil {
		log.Fatal(err)
	}
	hbm, err := run("HBM")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHBM speedup over DDR4-1ch: %.2fx — the memory-bandwidth gap\n",
		float64(ddr)/float64(hbm))
	fmt.Println("Figure 7 sweeps this across in-flight caps, technologies and instance counts.")
}
