// Quickstart: integrate a hand-written Verilog RTL block into a simulated
// SoC in ~60 lines. A pulse-counter peripheral written in Verilog is
// compiled by the gem5rtl Verilog toolflow, wrapped with the tick/reset
// shared-library interface, dropped into an RTLObject, and probed through
// its CPU-side timing port — the whole Figure 1 pipeline end to end.
package main

import (
	"fmt"
	"log"

	"gem5rtl/internal/port"
	"gem5rtl/internal/rtlobject"
	"gem5rtl/internal/sim"
	"gem5rtl/internal/verilog"
)

// The RTL design: counts cycles in which `pulse` is high; readable at any
// address; clears on any write.
const src = `
module pulsecnt (
    input  wire clk,
    input  wire pulse,
    input  wire clear,
    output reg [31:0] count
);
  always @(posedge clk) begin
    if (clear)      count <= 32'd0;
    else if (pulse) count <= count + 32'd1;
  end
endmodule
`

// wrapper adapts the compiled model to the RTLObject protocol.
type wrapper struct {
	m interface {
		SetInput(string, uint64)
		Tick()
		Peek(string) uint64
		Reset()
	}
}

func (w *wrapper) Name() string { return "pulsecnt" }
func (w *wrapper) Reset()       { w.m.Reset() }

func (w *wrapper) Tick(in *rtlobject.Input) *rtlobject.Output {
	out := &rtlobject.Output{}
	w.m.SetInput("pulse", 1) // pulse every cycle for the demo
	w.m.SetInput("clear", 0)
	for _, req := range in.CPURequests {
		if req.Write {
			w.m.SetInput("clear", 1)
			out.CPUResponses = append(out.CPUResponses, rtlobject.CPUResponse{ID: req.ID})
		} else {
			v := w.m.Peek("count")
			out.CPUResponses = append(out.CPUResponses, rtlobject.CPUResponse{
				ID: req.ID, Data: []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}})
		}
	}
	w.m.Tick()
	return out
}

// host is a minimal SoC agent reading the device.
type host struct{ got chan uint32 }

func (h *host) RecvTimingResp(pkt *port.Packet) bool {
	var v uint32
	for i, b := range pkt.Data {
		v |= uint32(b) << (8 * i)
	}
	h.got <- v
	return true
}
func (h *host) RecvReqRetry() {}

func main() {
	// 1) "Verilator": compile the RTL into a cycle-accurate model.
	model, err := verilog.Compile(src, "pulsecnt", nil)
	if err != nil {
		log.Fatal(err)
	}
	// 2) Build the simulated system: event queue, 2 GHz clock, RTLObject
	//    holding the wrapped model at 1 GHz (divider 2).
	q := sim.NewEventQueue()
	clk := sim.NewClockDomain("cpu", q, 2_000_000_000)
	obj := rtlobject.New(rtlobject.Config{Name: "pulsecnt", ClockDivider: 2},
		clk, &wrapper{m: model})
	// 3) Connect a host master to the device's CPU-side timing port.
	h := &host{got: make(chan uint32, 1)}
	hp := port.NewRequestPort("host", h)
	port.Bind(hp, obj.CPUPort(0))
	// 4) Run: let the device tick for 1 us, then read the counter.
	obj.Start()
	q.RunUntil(sim.Microsecond)
	hp.SendTimingReq(port.NewReadPacket(0, 4))
	q.RunUntil(q.Now() + 100*sim.Nanosecond)
	fmt.Printf("pulse count after 1us @1GHz: %d\n", <-h.got)
}
