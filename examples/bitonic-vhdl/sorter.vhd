library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

-- One compare-exchange element: lo gets the smaller, hi the larger.
entity cmpex is
  port (
    a  : in  std_logic_vector(7 downto 0);
    b  : in  std_logic_vector(7 downto 0);
    lo : out std_logic_vector(7 downto 0);
    hi : out std_logic_vector(7 downto 0)
  );
end entity;
architecture rtl of cmpex is
begin
  lo <= a when unsigned(a) < unsigned(b) else b;
  hi <= b when unsigned(a) < unsigned(b) else a;
end architecture;

-- 8-lane bitonic sorting network over two 32-bit buses (4 lanes each).
entity bitonic8 is
  port (
    in_lo  : in  std_logic_vector(31 downto 0);
    in_hi  : in  std_logic_vector(31 downto 0);
    out_lo : out std_logic_vector(31 downto 0);
    out_hi : out std_logic_vector(31 downto 0)
  );
end entity;
architecture rtl of bitonic8 is
  signal x0, x1, x2, x3, x4, x5, x6, x7 : std_logic_vector(7 downto 0);
  signal a0, a1, a2, a3, a4, a5, a6, a7 : std_logic_vector(7 downto 0);
  signal b0, b1, b2, b3, b4, b5, b6, b7 : std_logic_vector(7 downto 0);
  signal c0, c1, c2, c3, c4, c5, c6, c7 : std_logic_vector(7 downto 0);
  signal d0, d1, d2, d3, d4, d5, d6, d7 : std_logic_vector(7 downto 0);
  signal e0, e1, e2, e3, e4, e5, e6, e7 : std_logic_vector(7 downto 0);
  signal f0, f1, f2, f3, f4, f5, f6, f7 : std_logic_vector(7 downto 0);
begin
  x0 <= in_lo(7 downto 0);
  x1 <= in_lo(15 downto 8);
  x2 <= in_lo(23 downto 16);
  x3 <= in_lo(31 downto 24);
  x4 <= in_hi(7 downto 0);
  x5 <= in_hi(15 downto 8);
  x6 <= in_hi(23 downto 16);
  x7 <= in_hi(31 downto 24);

  -- Stage 1: sort pairs (alternating direction).
  s1a: entity work.cmpex port map (a => x0, b => x1, lo => a0, hi => a1);
  s1b: entity work.cmpex port map (a => x2, b => x3, lo => a3, hi => a2);
  s1c: entity work.cmpex port map (a => x4, b => x5, lo => a4, hi => a5);
  s1d: entity work.cmpex port map (a => x6, b => x7, lo => a7, hi => a6);

  -- Stage 2: bitonic merge of 4-element runs.
  s2a: entity work.cmpex port map (a => a0, b => a2, lo => b0, hi => b2);
  s2b: entity work.cmpex port map (a => a1, b => a3, lo => b1, hi => b3);
  s2c: entity work.cmpex port map (a => a4, b => a6, lo => b6, hi => b4);
  s2d: entity work.cmpex port map (a => a5, b => a7, lo => b7, hi => b5);

  s3a: entity work.cmpex port map (a => b0, b => b1, lo => c0, hi => c1);
  s3b: entity work.cmpex port map (a => b2, b => b3, lo => c2, hi => c3);
  s3c: entity work.cmpex port map (a => b4, b => b5, lo => c5, hi => c4);
  s3d: entity work.cmpex port map (a => b6, b => b7, lo => c7, hi => c6);

  -- Stage 3: final 8-element bitonic merge.
  s4a: entity work.cmpex port map (a => c0, b => c4, lo => d0, hi => d4);
  s4b: entity work.cmpex port map (a => c1, b => c5, lo => d1, hi => d5);
  s4c: entity work.cmpex port map (a => c2, b => c6, lo => d2, hi => d6);
  s4d: entity work.cmpex port map (a => c3, b => c7, lo => d3, hi => d7);

  s5a: entity work.cmpex port map (a => d0, b => d2, lo => e0, hi => e2);
  s5b: entity work.cmpex port map (a => d1, b => d3, lo => e1, hi => e3);
  s5c: entity work.cmpex port map (a => d4, b => d6, lo => e4, hi => e6);
  s5d: entity work.cmpex port map (a => d5, b => d7, lo => e5, hi => e7);

  s6a: entity work.cmpex port map (a => e0, b => e1, lo => f0, hi => f1);
  s6b: entity work.cmpex port map (a => e2, b => e3, lo => f2, hi => f3);
  s6c: entity work.cmpex port map (a => e4, b => e5, lo => f4, hi => f5);
  s6d: entity work.cmpex port map (a => e6, b => e7, lo => f6, hi => f7);

  out_lo <= f3 & f2 & f1 & f0;
  out_hi <= f7 & f6 & f5 & f4;
end architecture;
