// bitonic-vhdl: the paper's GHDL validation design (§4). An 8-lane bitonic
// sorting network written in VHDL is compiled by gem5rtl's VHDL toolflow —
// the GHDL stand-in — into the same cycle-accurate model representation the
// Verilog path produces, then exercised combinationally and through an
// RTLObject with a VCD waveform dump.
package main

import (
	"fmt"
	"log"
	"os"

	"gem5rtl/internal/vhdl"
)

func main() {
	src, err := os.ReadFile(sourcePath())
	if err != nil {
		log.Fatal(err)
	}
	model, err := vhdl.Compile(string(src), "bitonic8", nil)
	if err != nil {
		log.Fatal(err)
	}
	vcd, err := os.Create("bitonic.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer vcd.Close()
	w := model.AttachVCD(vcd, 1)
	defer w.Flush()

	inputs := [][8]uint8{
		{42, 7, 99, 1, 65, 23, 88, 12},
		{5, 4, 3, 2, 1, 0, 255, 128},
		{9, 9, 9, 1, 1, 1, 5, 5},
	}
	for _, vals := range inputs {
		var lo, hi uint64
		for i := 0; i < 4; i++ {
			lo |= uint64(vals[i]) << (8 * i)
			hi |= uint64(vals[4+i]) << (8 * i)
		}
		model.SetInput("in_lo", lo)
		model.SetInput("in_hi", hi)
		model.Tick() // clocked tick records the waveform step
		olo, ohi := model.Peek("out_lo"), model.Peek("out_hi")
		var sorted [8]uint8
		for i := 0; i < 4; i++ {
			sorted[i] = uint8(olo >> (8 * i))
			sorted[4+i] = uint8(ohi >> (8 * i))
		}
		fmt.Printf("%v -> %v\n", vals, sorted)
	}
	fmt.Println("waveform written to bitonic.vcd")
}

// sourcePath locates the VHDL next to this example.
func sourcePath() string {
	if _, err := os.Stat("sorter.vhd"); err == nil {
		return "sorter.vhd"
	}
	return "examples/bitonic-vhdl/sorter.vhd"
}
